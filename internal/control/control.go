// Package control implements the paper's processor-allocation controllers
// (§4): the hybrid Algorithm 1 — the paper's contribution — plus the two
// recurrences it hybridizes (Recurrence A, Eq. 32; Recurrence B, Eq. 33),
// a bisection controller derived from the monotonicity of r̄ (Eq. 30), and
// fixed-m / AIMD baselines used in ablation experiments.
//
// A Controller is a pure state machine: M() yields the number of
// processors to launch this round, Observe(r) feeds back the measured
// conflict ratio of the round just executed. Controllers are agnostic to
// what produced r — the model simulator (internal/sched) and the
// goroutine-based speculative runtime (internal/speculation) both drive
// them through this interface.
package control

import (
	"fmt"
	"math"
)

// Controller chooses the number of processors round by round.
type Controller interface {
	// M returns the processor count to use for the next round.
	M() int
	// Observe feeds the conflict ratio measured for the round that was
	// just executed with M() processors. Only *speculative* rounds are
	// observed: drives with a conflict-free phase (the colored
	// super-rounds of speculation.RunColored, whose r is ~0 by
	// construction) must not feed it, so r̄ keeps estimating the
	// contention the controller actually allocates against and Algorithm
	// 1 resumes from consistent state when speculation resumes.
	Observe(r float64)
	// Name identifies the controller in reports.
	Name() string
}

// Telemetry is an optional interface for controllers that expose
// internal decision counters for monitoring (e.g. a service's job
// status endpoint). Controllers are single-driver state machines, so
// Counters must be called from the goroutine driving M/Observe; callers
// that publish the result to other goroutines must copy it under their
// own synchronization.
type Telemetry interface {
	// Counters returns named decision counts accumulated so far.
	Counters() map[string]int
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HybridConfig carries the tunable parameters of Algorithm 1. The zero
// value is not valid; start from DefaultHybridConfig.
type HybridConfig struct {
	Rho    float64 // ρ: target conflict ratio
	M0     int     // initial processor count
	MMin   int     // lower clamp (paper: 2 — Remark 1)
	MMax   int     // upper clamp (paper: 1024)
	T      int     // averaging window in rounds (paper: 4)
	RMin   float64 // floor applied to the averaged ratio in Recurrence B (paper: 3%)
	Alpha0 float64 // |1−r/ρ| threshold above which Recurrence B fires (paper: 25%)
	Alpha1 float64 // |1−r/ρ| threshold above which Recurrence A fires (paper: 6%)

	// Small-m regime (Fig. 3 caption: "different parameters for m
	// greater or smaller than 20"). When M < SmallMThreshold the
	// controller uses SmallMT, SmallMAlpha0 and SmallMAlpha1 instead,
	// because the variance of r is much larger at small m (§4.1).
	// SmallMThreshold = 0 disables the special regime.
	SmallMThreshold int
	SmallMT         int
	SmallMAlpha0    float64
	SmallMAlpha1    float64
}

// DefaultHybridConfig returns the parameter set of Algorithm 1 as printed
// in the paper, with the small-m regime tuned per §4.1's guidance.
func DefaultHybridConfig(rho float64) HybridConfig {
	return HybridConfig{
		Rho:    rho,
		M0:     2,
		MMin:   2,
		MMax:   1024,
		T:      4,
		RMin:   0.03,
		Alpha0: 0.25,
		Alpha1: 0.06,

		SmallMThreshold: 20,
		SmallMT:         8,    // longer window: small-m ratios are noisy
		SmallMAlpha0:    0.40, // wider bands: avoid reacting to noise
		SmallMAlpha1:    0.12,
	}
}

// Validate reports whether the configuration is usable.
func (c HybridConfig) Validate() error {
	switch {
	case c.Rho < 0 || c.Rho >= 1:
		return fmt.Errorf("control: rho %v out of [0,1)", c.Rho)
	case c.MMin < 1 || c.MMax < c.MMin:
		return fmt.Errorf("control: bad clamp [%d,%d]", c.MMin, c.MMax)
	case c.M0 < 1:
		return fmt.Errorf("control: bad m0 %d", c.M0)
	case c.T < 1:
		return fmt.Errorf("control: bad window T=%d", c.T)
	case c.RMin <= 0:
		return fmt.Errorf("control: rmin %v must be positive", c.RMin)
	case c.Alpha0 < c.Alpha1:
		return fmt.Errorf("control: alpha0 %v < alpha1 %v", c.Alpha0, c.Alpha1)
	case c.SmallMThreshold > 0 && (c.SmallMT < 1 || c.SmallMAlpha0 < c.SmallMAlpha1):
		return fmt.Errorf("control: bad small-m regime")
	}
	return nil
}

// Hybrid is Algorithm 1: Recurrence B (m ← ⌈ρ/r·m⌉) for coarse, fast
// convergence when the averaged ratio is far from target, Recurrence A
// (m ← ⌈(1−r+ρ)·m⌉) for fine, stable adjustment when moderately off, and
// no change inside the α₁ dead-band (which avoids steady-state jitter
// that would churn task-to-processor locality, §4.1).
type Hybrid struct {
	cfg HybridConfig
	m   int
	acc float64 // sum of observed ratios in the current window
	cnt int     // observations in the current window

	// Updates counts window-boundary decisions, split by which rule
	// fired; exposed for ablation reporting.
	UpdatesB, UpdatesA, UpdatesNone int
}

// NewHybrid builds the Algorithm 1 controller; it panics on an invalid
// configuration (programmer error).
func NewHybrid(cfg HybridConfig) *Hybrid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hybrid{cfg: cfg, m: Clamp(cfg.M0, cfg.MMin, cfg.MMax)}
}

// Name implements Controller.
func (h *Hybrid) Name() string { return "hybrid" }

// M implements Controller.
func (h *Hybrid) M() int { return h.m }

// Config returns the controller's configuration.
func (h *Hybrid) Config() HybridConfig { return h.cfg }

// Counters implements Telemetry: how often each hybrid rule fired at
// window boundaries.
func (h *Hybrid) Counters() map[string]int {
	return map[string]int{
		"updates_b":    h.UpdatesB,
		"updates_a":    h.UpdatesA,
		"updates_none": h.UpdatesNone,
	}
}

// window returns the effective (T, α₀, α₁) for the current m, honoring
// the small-m regime if enabled.
func (h *Hybrid) window() (int, float64, float64) {
	c := h.cfg
	if c.SmallMThreshold > 0 && h.m < c.SmallMThreshold {
		return c.SmallMT, c.SmallMAlpha0, c.SmallMAlpha1
	}
	return c.T, c.Alpha0, c.Alpha1
}

// Observe implements Controller: it accumulates the measured ratio and,
// at window boundaries, applies the hybrid update.
func (h *Hybrid) Observe(r float64) {
	h.acc += r
	h.cnt++
	T, a0, a1 := h.window()
	if h.cnt < T {
		return
	}
	avg := h.acc / float64(h.cnt)
	h.acc, h.cnt = 0, 0

	alpha := math.Abs(1 - avg/h.cfg.Rho)
	switch {
	case alpha > a0:
		// Recurrence B: assume initial linearity of r̄(m) (Fig. 2) and
		// jump straight to the ratio-matching m. Floor r to avoid the
		// unbounded jump when no conflicts were seen.
		rb := avg
		if rb < h.cfg.RMin {
			rb = h.cfg.RMin
		}
		h.m = int(math.Ceil(h.cfg.Rho / rb * float64(h.m)))
		h.UpdatesB++
	case alpha > a1:
		// Recurrence A: small proportional step.
		h.m = int(math.Ceil((1 - avg + h.cfg.Rho) * float64(h.m)))
		h.UpdatesA++
	default:
		h.UpdatesNone++
	}
	h.m = Clamp(h.m, h.cfg.MMin, h.cfg.MMax)
}

// RecurrenceA is the pure Recurrence A controller (Eq. 32) with the same
// T-averaging as the hybrid; used as the comparison baseline of Fig. 3.
type RecurrenceA struct {
	Rho        float64
	MMin, MMax int
	T          int
	m          int
	acc        float64
	cnt        int
}

// NewRecurrenceA builds the baseline with paper-default clamps.
func NewRecurrenceA(rho float64, m0 int) *RecurrenceA {
	return &RecurrenceA{Rho: rho, MMin: 2, MMax: 1024, T: 4, m: m0}
}

// Name implements Controller.
func (c *RecurrenceA) Name() string { return "recurrence-a" }

// M implements Controller.
func (c *RecurrenceA) M() int { return c.m }

// Observe implements Controller.
func (c *RecurrenceA) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	c.m = Clamp(int(math.Ceil((1-avg+c.Rho)*float64(c.m))), c.MMin, c.MMax)
}

// RecurrenceB is the pure Recurrence B controller (Eq. 33) with
// T-averaging and the r_min floor. Fast but noisy — the other half of
// the hybrid.
type RecurrenceB struct {
	Rho        float64
	RMin       float64
	MMin, MMax int
	T          int
	m          int
	acc        float64
	cnt        int
}

// NewRecurrenceB builds the baseline with paper-default clamps.
func NewRecurrenceB(rho float64, m0 int) *RecurrenceB {
	return &RecurrenceB{Rho: rho, RMin: 0.03, MMin: 2, MMax: 1024, T: 4, m: m0}
}

// Name implements Controller.
func (c *RecurrenceB) Name() string { return "recurrence-b" }

// M implements Controller.
func (c *RecurrenceB) M() int { return c.m }

// Observe implements Controller.
func (c *RecurrenceB) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	if avg < c.RMin {
		avg = c.RMin
	}
	c.m = Clamp(int(math.Ceil(c.Rho/avg*float64(c.m))), c.MMin, c.MMax)
}

// Bisection exploits Prop. 1 (monotonicity of r̄) per Eq. 30: it brackets
// μ between a known-low and known-high processor count, doubling upward
// until a bracket exists and then halving the bracket. Robust but slower
// to converge than the hybrid, and it cannot track a drifting target
// without re-bracketing (handled by widening on bracket violation).
type Bisection struct {
	Rho        float64
	MMin, MMax int
	T          int
	m          int
	lo, hi     int // hi == 0 means "no upper bracket yet"
	acc        float64
	cnt        int
}

// NewBisection builds the bisection controller.
func NewBisection(rho float64, m0 int) *Bisection {
	return &Bisection{Rho: rho, MMin: 2, MMax: 1024, T: 4, m: m0, lo: 2}
}

// Name implements Controller.
func (c *Bisection) Name() string { return "bisection" }

// M implements Controller.
func (c *Bisection) M() int { return c.m }

// Observe implements Controller.
func (c *Bisection) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	if avg < c.Rho {
		// Current m is feasible: raise the floor.
		if c.m > c.lo {
			c.lo = c.m
		}
		if c.hi == 0 {
			c.m = Clamp(c.m*2, c.MMin, c.MMax) // expansion phase
			return
		}
	} else {
		// Too many conflicts: m is an upper bracket.
		if c.hi == 0 || c.m < c.hi {
			c.hi = c.m
		}
		if c.hi <= c.lo { // target drifted below the old floor
			c.lo = c.MMin
		}
	}
	if c.hi != 0 {
		c.m = Clamp((c.lo+c.hi)/2, c.MMin, c.MMax)
	}
}

// Fixed always returns the same m — the non-adaptive allocation the paper
// argues against for irregular algorithms.
type Fixed struct{ Procs int }

// Name implements Controller.
func (c Fixed) Name() string { return fmt.Sprintf("fixed-%d", c.Procs) }

// M implements Controller.
func (c Fixed) M() int { return c.Procs }

// Observe implements Controller.
func (c Fixed) Observe(float64) {}

// PI is a textbook proportional-integral controller on the error
// e = ρ − r, actuating multiplicatively (the plant gain of r̄(m) scales
// with m, so relative steps keep loop gain roughly constant). Included
// as the classical-control baseline the paper's recurrences implicitly
// compete with: Recurrence A is a pure proportional controller with
// gain 1 in these coordinates.
type PI struct {
	Rho        float64
	Kp, Ki     float64
	MMin, MMax int
	T          int

	m        int
	integral float64
	acc      float64
	cnt      int
}

// NewPI builds the PI baseline with conservative default gains.
func NewPI(rho float64, m0 int) *PI {
	return &PI{Rho: rho, Kp: 1.2, Ki: 0.3, MMin: 2, MMax: 1024, T: 4, m: m0}
}

// Name implements Controller.
func (c *PI) Name() string { return "pi" }

// M implements Controller.
func (c *PI) M() int { return c.m }

// Observe implements Controller.
func (c *PI) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	err := c.Rho - avg
	c.integral += err
	// Anti-windup: keep the integral inside actuation range.
	if c.integral > 2 {
		c.integral = 2
	}
	if c.integral < -2 {
		c.integral = -2
	}
	factor := 1 + c.Kp*err + c.Ki*c.integral
	if factor < 0.25 {
		factor = 0.25
	}
	if factor > 4 {
		factor = 4
	}
	c.m = Clamp(int(math.Ceil(float64(c.m)*factor)), c.MMin, c.MMax)
}

// AIMD is the congestion-control-style baseline: additive increase while
// under target, multiplicative decrease when over. Included to situate
// the paper's recurrences against the standard adaptive heuristic.
type AIMD struct {
	Rho        float64
	Add        int     // additive step (default 2)
	Mul        float64 // decrease factor in (0,1) (default 0.5)
	MMin, MMax int
	T          int
	m          int
	acc        float64
	cnt        int
}

// NewAIMD builds the AIMD baseline.
func NewAIMD(rho float64, m0 int) *AIMD {
	return &AIMD{Rho: rho, Add: 2, Mul: 0.5, MMin: 2, MMax: 1024, T: 4, m: m0}
}

// Name implements Controller.
func (c *AIMD) Name() string { return "aimd" }

// M implements Controller.
func (c *AIMD) M() int { return c.m }

// Observe implements Controller.
func (c *AIMD) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	if avg <= c.Rho {
		c.m += c.Add
	} else {
		c.m = int(float64(c.m) * c.Mul)
	}
	c.m = Clamp(c.m, c.MMin, c.MMax)
}
