package control

import (
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Trajectory records a closed-loop run: per round, the processor count
// used and the conflict ratio observed.
type Trajectory struct {
	Controller string
	M          []int
	R          []float64
	Committed  []int
}

// Len returns the number of recorded rounds.
func (tr *Trajectory) Len() int { return len(tr.M) }

// MSeries converts the m trajectory to a stats.Series for reporting.
func (tr *Trajectory) MSeries() *stats.Series {
	s := &stats.Series{Name: tr.Controller + "/m"}
	for i, m := range tr.M {
		s.Append(float64(i), float64(m))
	}
	return s
}

// ConvergenceStep returns the first round index after which m stays
// within ±tol (relative) of target for at least hold consecutive rounds,
// or -1 if it never does. This is the §4.1 convergence metric ("in about
// 15 steps the controller converges close to the desired μ value").
func (tr *Trajectory) ConvergenceStep(target float64, tol float64, hold int) int {
	if target <= 0 {
		return -1
	}
	run := 0
	for i, m := range tr.M {
		if stats.RelErr(float64(m), target) <= tol {
			run++
			if run >= hold {
				return i - hold + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// SteadyStateStats returns mean and standard deviation of m over the last
// tail rounds — the oscillation metric of the §4.1 ablations.
func (tr *Trajectory) SteadyStateStats(tail int) (mean, std float64) {
	if tail > len(tr.M) {
		tail = len(tr.M)
	}
	var acc stats.Accumulator
	for _, m := range tr.M[len(tr.M)-tail:] {
		acc.Add(float64(m))
	}
	return acc.Mean(), acc.StdDev()
}

// RunLoop drives controller c against scheduler s for at most maxRounds
// rounds (or until the graph drains, whichever is first) and records the
// trajectory. The loop is exactly the paper's main loop: clamp/launch m,
// observe the conflict ratio, let the controller update.
func RunLoop(s *sched.Scheduler, c Controller, maxRounds int) *Trajectory {
	tr := &Trajectory{Controller: c.Name()}
	for round := 0; round < maxRounds && !s.Done(); round++ {
		m := c.M()
		res := s.Step(m)
		r := res.ConflictRatio()
		tr.M = append(tr.M, m)
		tr.R = append(tr.R, r)
		tr.Committed = append(tr.Committed, len(res.Committed))
		c.Observe(r)
	}
	return tr
}

// RunLoopStatic drives the controller against a *static* conflict-ratio
// oracle: each round the observed ratio is a Monte Carlo draw of one
// random round at the current m on a fixed graph, without removing nodes.
// This isolates controller dynamics from graph drain (the Fig. 3
// setting, where G_t is assumed quasi-static) and is the harness for
// convergence experiments.
func RunLoopStatic(g *graph.Graph, r *rng.Rand, c Controller, rounds int) *Trajectory {
	tr := &Trajectory{Controller: c.Name()}
	for round := 0; round < rounds; round++ {
		m := c.M()
		mm := m
		if n := g.NumNodes(); mm > n {
			mm = n
		}
		ratio := 0.0
		if mm > 0 {
			order := g.SampleNodes(r, mm)
			committed := graph.GreedyMISSize(g, order)
			ratio = float64(mm-committed) / float64(mm)
			tr.Committed = append(tr.Committed, committed)
		} else {
			tr.Committed = append(tr.Committed, 0)
		}
		tr.M = append(tr.M, m)
		tr.R = append(tr.R, ratio)
		c.Observe(ratio)
	}
	return tr
}

// TargetM finds μ — the largest m with r̄(m) ≤ rho — on a static graph by
// bisection over the Monte Carlo estimate of r̄ (Prop. 1 guarantees the
// bisection invariant). reps controls estimator accuracy.
func TargetM(g *graph.Graph, r *rng.Rand, rho float64, reps int) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	lo, hi := 1, n // r̄(1) = 0 ≤ rho always
	if sched.ConflictRatioMC(g, r, n, reps) <= rho {
		return n
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if sched.ConflictRatioMC(g, r, mid, reps) <= rho {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TargetMParallel is TargetM rebuilt on the CSR estimation engine: the
// graph is snapshotted once and every bisection probe shards its reps
// across workers (≤ 0 means GOMAXPROCS), so the ~log₂ n probes of a
// model-based target query reuse one flat snapshot instead of re-walking
// the map adjacency.
func TargetMParallel(g *graph.Graph, r *rng.Rand, rho float64, reps, workers int) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	est := sched.NewEstimator(g, workers)
	lo, hi := 1, n // r̄(1) = 0 ≤ rho always
	if est.ConflictRatio(r, n, reps) <= rho {
		return n
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if est.ConflictRatio(r, mid, reps) <= rho {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
