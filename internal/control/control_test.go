package control

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultHybridConfig(0.25)
	if c.M0 != 2 || c.MMin != 2 || c.MMax != 1024 {
		t.Errorf("clamps %d/%d/%d differ from paper", c.M0, c.MMin, c.MMax)
	}
	if c.T != 4 {
		t.Errorf("T = %d, want 4", c.T)
	}
	if c.RMin != 0.03 || c.Alpha0 != 0.25 || c.Alpha1 != 0.06 {
		t.Errorf("thresholds %v/%v/%v differ from paper", c.RMin, c.Alpha0, c.Alpha1)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*HybridConfig){
		func(c *HybridConfig) { c.Rho = -0.1 },
		func(c *HybridConfig) { c.Rho = 1.0 },
		func(c *HybridConfig) { c.MMin = 0 },
		func(c *HybridConfig) { c.MMax = 1 },
		func(c *HybridConfig) { c.M0 = 0 },
		func(c *HybridConfig) { c.T = 0 },
		func(c *HybridConfig) { c.RMin = 0 },
		func(c *HybridConfig) { c.Alpha0 = 0.01 }, // below Alpha1
		func(c *HybridConfig) { c.SmallMT = 0 },
	}
	for i, mutate := range bad {
		c := DefaultHybridConfig(0.2)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// Feed a constant ratio and check the update rules fire exactly as the
// pseudo-code prescribes.
func TestHybridRecurrenceBFires(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0 // pure Algorithm 1, no small-m special case
	cfg.M0 = 100
	h := NewHybrid(cfg)
	// r = 0.05: alpha = |1-0.25| = 0.75 > 0.25 → Recurrence B:
	// m = ceil(0.20/0.05 * 100) = 400.
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	if h.M() != 400 {
		t.Fatalf("m = %d, want 400", h.M())
	}
	if h.UpdatesB != 1 || h.UpdatesA != 0 {
		t.Fatalf("updates B/A = %d/%d", h.UpdatesB, h.UpdatesA)
	}
}

func TestHybridRecurrenceAFires(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0
	cfg.M0 = 100
	h := NewHybrid(cfg)
	// r = 0.16: alpha = 0.2 ∈ (0.06, 0.25] → Recurrence A:
	// m = ceil((1-0.16+0.20)*100) = 104.
	for i := 0; i < 4; i++ {
		h.Observe(0.16)
	}
	if h.M() != 104 {
		t.Fatalf("m = %d, want 104", h.M())
	}
	if h.UpdatesA != 1 || h.UpdatesB != 0 {
		t.Fatalf("updates B/A = %d/%d", h.UpdatesB, h.UpdatesA)
	}
}

func TestHybridDeadBandHolds(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0
	cfg.M0 = 100
	h := NewHybrid(cfg)
	// r = 0.21: alpha = 0.05 ≤ 0.06 → no change (locality preservation).
	for i := 0; i < 4; i++ {
		h.Observe(0.21)
	}
	if h.M() != 100 {
		t.Fatalf("m = %d, want unchanged 100", h.M())
	}
	if h.UpdatesNone != 1 {
		t.Fatalf("UpdatesNone = %d", h.UpdatesNone)
	}
}

func TestHybridRMinFloorPreventsBlowup(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0
	cfg.M0 = 50
	h := NewHybrid(cfg)
	// Zero observed conflicts: without the floor m would be infinite;
	// with r_min = 3% the jump is ρ/r_min = 6.67×.
	for i := 0; i < 4; i++ {
		h.Observe(0)
	}
	want := int(math.Ceil(0.20 / 0.03 * 50))
	if h.M() != want {
		t.Fatalf("m = %d, want %d", h.M(), want)
	}
}

func TestHybridClampsToMMax(t *testing.T) {
	cfg := DefaultHybridConfig(0.25)
	cfg.SmallMThreshold = 0
	cfg.M0 = 1000
	h := NewHybrid(cfg)
	for i := 0; i < 4; i++ {
		h.Observe(0)
	}
	if h.M() != 1024 {
		t.Fatalf("m = %d, want clamp at 1024", h.M())
	}
}

func TestHybridClampsToMMin(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0
	cfg.M0 = 2
	h := NewHybrid(cfg)
	// Catastrophic conflicts drive m down but never below 2 (Remark 1).
	for w := 0; w < 5; w++ {
		for i := 0; i < 4; i++ {
			h.Observe(0.95)
		}
	}
	if h.M() != 2 {
		t.Fatalf("m = %d, want floor 2", h.M())
	}
}

func TestHybridWindowAveraging(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.SmallMThreshold = 0
	cfg.M0 = 100
	h := NewHybrid(cfg)
	// Three noisy observations then one: only the window average (0.05)
	// matters, and no update happens before the window closes.
	h.Observe(0.20)
	if h.M() != 100 {
		t.Fatal("update before window boundary")
	}
	h.Observe(0.0)
	h.Observe(0.0)
	h.Observe(0.0)
	if h.M() != 400 { // avg 0.05 → B fires as in TestHybridRecurrenceBFires
		t.Fatalf("m = %d, want 400", h.M())
	}
}

func TestHybridSmallMRegimeUsesLongerWindow(t *testing.T) {
	cfg := DefaultHybridConfig(0.20)
	cfg.M0 = 5 // below SmallMThreshold = 20
	h := NewHybrid(cfg)
	for i := 0; i < cfg.T; i++ { // only the big-m window's worth
		h.Observe(0)
	}
	if h.M() != 5 {
		t.Fatalf("small-m regime should wait %d rounds, m changed to %d", cfg.SmallMT, h.M())
	}
	for i := cfg.T; i < cfg.SmallMT; i++ {
		h.Observe(0)
	}
	if h.M() <= 5 {
		t.Fatal("small-m window closed but no update")
	}
}

func TestRecurrenceAUpdate(t *testing.T) {
	c := NewRecurrenceA(0.20, 100)
	for i := 0; i < 4; i++ {
		c.Observe(0.05)
	}
	// m = ceil((1-0.05+0.20)*100) = 115: slow compared to B's 400.
	if c.M() != 115 {
		t.Fatalf("m = %d, want 115", c.M())
	}
}

func TestRecurrenceBUpdate(t *testing.T) {
	c := NewRecurrenceB(0.20, 100)
	for i := 0; i < 4; i++ {
		c.Observe(0.40)
	}
	// m = ceil(0.20/0.40*100) = 50.
	if c.M() != 50 {
		t.Fatalf("m = %d, want 50", c.M())
	}
}

func TestFixedNeverMoves(t *testing.T) {
	c := Fixed{Procs: 64}
	for i := 0; i < 100; i++ {
		c.Observe(0.9)
	}
	if c.M() != 64 {
		t.Fatal("fixed controller moved")
	}
}

func TestAIMD(t *testing.T) {
	c := NewAIMD(0.20, 10)
	for i := 0; i < 4; i++ {
		c.Observe(0.0)
	}
	if c.M() != 12 {
		t.Fatalf("additive increase: m = %d, want 12", c.M())
	}
	for i := 0; i < 4; i++ {
		c.Observe(0.9)
	}
	if c.M() != 6 {
		t.Fatalf("multiplicative decrease: m = %d, want 6", c.M())
	}
}

func TestBisectionConverges(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	mu := TargetM(g, r.Split(), 0.20, 400)
	c := NewBisection(0.20, 2)
	tr := RunLoopStatic(g, r, c, 400)
	mean, _ := tr.SteadyStateStats(60)
	if math.Abs(mean-float64(mu)) > 0.35*float64(mu) {
		t.Fatalf("bisection steady state %v far from μ=%d", mean, mu)
	}
}

// Remark 1: with ρ = 0 the system collapses toward one processor (our
// clamp keeps it at m_min = 2) and cannot discover parallelism.
func TestRhoZeroCollapse(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	cfg := DefaultHybridConfig(0.001) // ρ ≈ 0 (0 itself is invalid: div by ρ)
	h := NewHybrid(cfg)
	tr := RunLoopStatic(g, r, h, 300)
	mean, _ := tr.SteadyStateStats(50)
	if mean > 10 {
		t.Fatalf("ρ≈0 should pin m near m_min, steady mean %v", mean)
	}
}

// The §4.1 headline: starting from m0 = 2 on a random CC graph, the
// hybrid converges close to μ in a small number of steps (~15), and the
// hybrid is faster than Recurrence A alone (Fig. 3).
func TestHybridConvergesFastAndBeatsRecurrenceA(t *testing.T) {
	r := rng.New(3)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	rho := 0.20
	mu := float64(TargetM(g, r.Split(), rho, 500))

	cfg := DefaultHybridConfig(rho)
	hybrid := NewHybrid(cfg)
	trH := RunLoopStatic(g, r.Split(), hybrid, 300)
	stepH := trH.ConvergenceStep(mu, 0.30, 8)
	if stepH < 0 {
		t.Fatalf("hybrid never converged to μ=%v; tail mean %v", mu, trH.MSeries().TailMean(20))
	}
	if stepH > 60 {
		t.Errorf("hybrid took %d rounds to converge, expected a few tens", stepH)
	}

	recA := NewRecurrenceA(rho, 2)
	trA := RunLoopStatic(g, r.Split(), recA, 300)
	stepA := trA.ConvergenceStep(mu, 0.30, 8)
	if stepA >= 0 && stepA < stepH {
		t.Errorf("Recurrence A (%d) converged before hybrid (%d)", stepA, stepH)
	}
	// Hybrid must be stable in steady state: relative std below 30%.
	mean, std := trH.SteadyStateStats(80)
	if std > 0.35*mean {
		t.Errorf("hybrid steady state too noisy: mean %v std %v", mean, std)
	}
}

func TestRunLoopDrainsAndRecords(t *testing.T) {
	r := rng.New(4)
	g := graph.RandomGNM(r, 300, 900)
	s := sched.New(g, r)
	h := NewHybrid(DefaultHybridConfig(0.25))
	tr := RunLoop(s, h, 10000)
	if !s.Done() {
		t.Fatal("graph not drained")
	}
	if tr.Len() == 0 || tr.Len() != len(tr.R) || tr.Len() != len(tr.Committed) {
		t.Fatal("trajectory misrecorded")
	}
	total := 0
	for _, c := range tr.Committed {
		total += c
	}
	if total != 300 {
		t.Fatalf("committed %d total, want 300", total)
	}
}

func TestConvergenceStepSemantics(t *testing.T) {
	tr := &Trajectory{M: []int{2, 4, 50, 52, 49, 51, 50, 10, 50, 50}}
	// target 50, tol 10%, hold 3: first window of 3 consecutive
	// in-band values starts at index 2.
	if got := tr.ConvergenceStep(50, 0.10, 3); got != 2 {
		t.Fatalf("ConvergenceStep = %d, want 2", got)
	}
	// hold 6 is broken by the 10 at index 7 → never.
	if got := tr.ConvergenceStep(50, 0.10, 6); got != -1 {
		t.Fatalf("ConvergenceStep = %d, want -1", got)
	}
	if got := tr.ConvergenceStep(0, 0.1, 1); got != -1 {
		t.Fatal("nonpositive target must return -1")
	}
}

func TestTargetMProperties(t *testing.T) {
	r := rng.New(5)
	// Empty-ish and trivial graphs.
	if got := TargetM(graph.Empty(50), r, 0.2, 100); got != 50 {
		t.Fatalf("disconnected graph: μ = %d, want n", got)
	}
	if got := TargetM(graph.New(), r, 0.2, 100); got != 0 {
		t.Fatalf("empty graph: μ = %d, want 0", got)
	}
	// Complete graph: r̄(m) = (m-1)/m > 0.2 for m ≥ 2, so μ = 1.
	if got := TargetM(graph.Complete(30), r, 0.2, 2000); got != 1 {
		t.Fatalf("complete graph: μ = %d, want 1", got)
	}
	// Monotone in rho.
	g := graph.RandomWithAvgDegree(r, 500, 8)
	m20 := TargetM(g, r, 0.20, 300)
	m30 := TargetM(g, r, 0.30, 300)
	if m30 < m20 {
		t.Fatalf("μ(30%%)=%d < μ(20%%)=%d", m30, m20)
	}
}
