package control

// WindowedEstimator turns a continuous stream of per-task outcomes
// (commit / abort) into the per-round conflict-ratio samples the
// controllers consume. The barrier-free executor has no rounds, so the
// estimator batches outcomes into sliding windows: once Window
// outcomes have accumulated, Flush returns their aggregate as one
// pseudo-round observation r = aborts/launched and resets the window.
//
// With the window sized to the current in-flight limit m, each sample
// aggregates m outcomes — statistically the same observation a round
// of m tasks would produce — so the existing controllers (Hybrid,
// model-based, PI, …) apply unchanged and converge to the same
// steady-state allocation as in round mode.
//
// Failures (panics, non-conflict errors) are excluded by construction:
// callers feed only commits and aborts, matching the round path's
// RoundStats.ConflictRatio semantics where an injected panic is not
// contention.
//
// The estimator is not goroutine-safe; the async engine guards it with
// its own mutex.
type WindowedEstimator struct {
	window    int
	adaptive  bool // Window 0: track the caller's SetWindow (current m)
	committed int
	aborted   int
}

// WindowStats is one flushed window: a pseudo-round observation.
type WindowStats struct {
	Launched  int
	Committed int
	Aborted   int
	R         float64 // aborted/launched
}

// NewWindowedEstimator returns an estimator that aggregates `window`
// outcomes per sample. window <= 0 selects adaptive mode: the window
// tracks the value passed to SetWindow (the async engine passes the
// current in-flight limit, giving round-equivalent samples).
func NewWindowedEstimator(window int) *WindowedEstimator {
	e := &WindowedEstimator{window: window}
	if window <= 0 {
		e.adaptive = true
		e.window = 1
	}
	return e
}

// SetWindow updates the window size in adaptive mode (fixed-size
// estimators ignore it). The new size applies to the window currently
// accumulating.
func (e *WindowedEstimator) SetWindow(n int) {
	if !e.adaptive || n < 1 {
		return
	}
	e.window = n
}

// Window returns the current window size in outcomes.
func (e *WindowedEstimator) Window() int { return e.window }

// ObserveCommit records one committed task.
func (e *WindowedEstimator) ObserveCommit() { e.committed++ }

// ObserveAbort records one conflict abort.
func (e *WindowedEstimator) ObserveAbort() { e.aborted++ }

// Samples returns the number of outcomes in the accumulating window.
func (e *WindowedEstimator) Samples() int { return e.committed + e.aborted }

// Ready reports whether a full window has accumulated.
func (e *WindowedEstimator) Ready() bool { return e.Samples() >= e.window }

// Flush returns the accumulated window as one pseudo-round observation
// and resets the accumulator. Call only when Ready (a zero-sample
// flush returns r = 0).
func (e *WindowedEstimator) Flush() WindowStats {
	s := WindowStats{
		Launched:  e.committed + e.aborted,
		Committed: e.committed,
		Aborted:   e.aborted,
	}
	if s.Launched > 0 {
		s.R = float64(s.Aborted) / float64(s.Launched)
	}
	e.committed, e.aborted = 0, 0
	return s
}
