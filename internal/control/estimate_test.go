package control

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestSmartStartInitialM(t *testing.T) {
	h := NewHybridSmartStart(0.25, 2000, 16)
	if h.M() != 58 { // 2000/(2·17)
		t.Fatalf("smart start m0 = %d, want 58", h.M())
	}
	// Enormous n clamps to MMax.
	h = NewHybridSmartStart(0.25, 10_000_000, 1)
	if h.M() != 1024 {
		t.Fatalf("clamped m0 = %d", h.M())
	}
}

// Smart start must converge strictly faster than the cold start on the
// paper's Fig. 3 setting.
func TestSmartStartBeatsColdStart(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	rho := 0.20
	mu := float64(TargetM(g, r.Split(), rho, 400))

	cold := NewHybrid(DefaultHybridConfig(rho))
	trCold := RunLoopStatic(g, r.Split(), cold, 200)
	stepCold := trCold.ConvergenceStep(mu, 0.30, 8)

	smart := NewHybridSmartStart(rho, 2000, 16)
	trSmart := RunLoopStatic(g, r.Split(), smart, 200)
	stepSmart := trSmart.ConvergenceStep(mu, 0.30, 8)

	if stepSmart < 0 {
		t.Fatal("smart start never converged")
	}
	if stepCold >= 0 && stepSmart > stepCold {
		t.Errorf("smart start (%d) slower than cold start (%d)", stepSmart, stepCold)
	}
	// The smart start's first-round conflict ratio must respect the
	// Cor. 3 promise (≤ ~21.3% + Monte Carlo noise).
	if trSmart.R[0] > 0.30 {
		t.Errorf("first-round ratio %v breaks the Cor. 3 promise", trSmart.R[0])
	}
}

func TestDegreeEstimatorRecoversDegree(t *testing.T) {
	r := rng.New(2)
	const n = 2000
	for _, d := range []float64{8, 16, 32} {
		g := graph.RandomWithAvgDegree(r, n, d)
		est := &DegreeEstimator{N: n}
		// Feed measured ratios at small m (the linear regime).
		for _, m := range []int{4, 8, 16, 32} {
			ratio := sched.ConflictRatioMC(g, r, m, 2000)
			est.Observe(m, ratio)
		}
		got := est.Degree()
		if math.Abs(got-d) > 0.35*d {
			t.Errorf("d=%v: estimated %v", d, got)
		}
	}
}

func TestDegreeEstimatorIgnoresUninformative(t *testing.T) {
	est := &DegreeEstimator{N: 100}
	est.Observe(1, 0.5) // m=1 carries no signal
	est.Observe(0, 0.5)
	if est.Degree() != 0 || est.Samples() != 0 {
		t.Fatal("uninformative samples counted")
	}
	if est.SafeM(7) != 7 {
		t.Fatal("fallback not used")
	}
	est.Observe(2, 0.1)
	if est.Degree() <= 0 {
		t.Fatal("informative sample ignored")
	}
	if est.SafeM(7) == 7 && est.Degree() != 0 {
		// SafeM should now derive from the estimate (could coincide
		// with 7 only by accident of the numbers; check directly).
		want := analytic.SuggestedInitialM(100, est.Degree())
		if est.SafeM(7) != want {
			t.Fatalf("SafeM = %d, want %d", est.SafeM(7), want)
		}
	}
}

func TestMaxAlphaFor(t *testing.T) {
	// Cor. 3 at α=1/2 gives ≈0.213 for large d, so MaxAlphaFor(0.213)
	// should return ≈ 0.5.
	a := MaxAlphaFor(0.213, 1e9)
	if math.Abs(a-0.5) > 0.01 {
		t.Fatalf("MaxAlphaFor(0.213) = %v, want ≈0.5", a)
	}
	// Monotone in rho.
	if MaxAlphaFor(0.10, 16) >= MaxAlphaFor(0.30, 16) {
		t.Fatal("MaxAlphaFor not monotone in rho")
	}
	// The returned α indeed satisfies the bound.
	for _, rho := range []float64{0.1, 0.2, 0.3} {
		a := MaxAlphaFor(rho, 16)
		if b := analytic.Cor3ConflictBound(a, 16); b > rho+1e-9 {
			t.Errorf("bound(%v) = %v exceeds rho %v", a, b, rho)
		}
	}
	if MaxAlphaFor(0, 16) != 0 {
		t.Fatal("rho=0 should give alpha 0")
	}
}

func TestGuaranteedM(t *testing.T) {
	// The guaranteed allocation must keep the measured ratio within rho
	// even on the true worst-case graph.
	r := rng.New(3)
	const n, d = 2040, 16
	for _, rho := range []float64{0.15, 0.25} {
		m := GuaranteedM(rho, n, d)
		if m < 1 {
			t.Fatalf("degenerate m = %d", m)
		}
		g := graph.CliqueUnion(n, d)
		measured := sched.ConflictRatioMC(g, r, m, 2000)
		if measured > rho+0.03 {
			t.Errorf("rho=%v: guaranteed m=%d measured %v on K^n_d", rho, m, measured)
		}
	}
	// rho ≥ 1-ish: everything is allowed.
	if m := GuaranteedM(0.999, 100, 4); m != 100 {
		t.Errorf("near-1 rho: m = %d, want n", m)
	}
}
