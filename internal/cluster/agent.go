package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// AgentConfig wires a node's membership agent.
type AgentConfig struct {
	// RouterURL is the router's base URL (the -join flag).
	RouterURL string
	// NodeID is this node's cluster id (must be stable across the
	// node's restarts for handoff bookkeeping to read well, but any
	// unique string works).
	NodeID string
	// Advertise is the base URL peers and the router reach this node at.
	Advertise string
	// TTL is the lease duration requested on each renewal; heartbeats
	// fire every TTL/3 so two can be lost before the lease expires.
	TTL time.Duration
	// Incarnation distinguishes this process from earlier ones under
	// the same NodeID. Monotone per restart (wall-clock nanos do fine).
	Incarnation int64
	// Load reports current load for least-loaded placement (optional).
	Load func() LoadInfo
	// HTTPClient defaults to a 5s-timeout client.
	HTTPClient *http.Client
	// Logf receives agent lifecycle lines (optional).
	Logf func(format string, args ...any)
}

// Agent keeps a node's membership lease alive. It heartbeats the
// router every TTL/3, tracks the gossiped membership view, and closes
// Revoked() if the router refuses the lease — the signal to drain.
type Agent struct {
	cfg    AgentConfig
	client *http.Client

	mu      sync.Mutex
	expires time.Time
	members []MemberInfo

	revoked   chan struct{}
	revokeMsg string
	revOnce   sync.Once

	retries   atomic.Int64
	jitterSeq atomic.Uint64

	stop    chan struct{}
	stopped sync.WaitGroup
}

// agentRetryMax bounds the in-period retries of one heartbeat: with
// heartbeats every TTL/3, two quick retries still finish well inside
// the period, so a transient router blip costs milliseconds of lease
// slack instead of a whole heartbeat.
const agentRetryMax = 2

// StartAgent joins the cluster (the first renewal is the join) and
// starts the heartbeat loop. The initial join is attempted eagerly and
// retried by the loop, so a node may come up before its router.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.RouterURL == "" || cfg.NodeID == "" || cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: agent needs RouterURL, NodeID, and Advertise")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agent{
		cfg:     cfg,
		client:  cfg.HTTPClient,
		revoked: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: 5 * time.Second}
	}
	a.jitterSeq.Store(uint64(time.Now().UnixNano()))
	if err := a.renew(); err != nil {
		a.cfg.Logf("cluster: initial join of %s failed (will retry): %v", cfg.RouterURL, err)
	}
	a.stopped.Add(1)
	go a.loop()
	return a, nil
}

func (a *Agent) loop() {
	defer a.stopped.Done()
	tick := time.NewTicker(a.cfg.TTL / 3)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-a.revoked:
			return
		case <-tick.C:
			if err := a.renewWithRetry(); err != nil {
				a.cfg.Logf("cluster: lease renewal failed: %v", err)
			}
		}
	}
}

// renewWithRetry sends one heartbeat, retrying failures with capped
// exponential backoff and jitter so a transient router blip does not
// burn a whole heartbeat period of lease slack.
func (a *Agent) renewWithRetry() error {
	backoff := 25 * time.Millisecond
	maxBackoff := a.cfg.TTL / 6
	if maxBackoff < backoff {
		maxBackoff = backoff
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = a.renew(); err == nil {
			return nil
		}
		if attempt >= agentRetryMax {
			return err
		}
		a.retries.Add(1)
		// Sleep in [backoff/2, backoff) so restarting agents desynchronize.
		d := backoff/2 + time.Duration(rng.New(a.jitterSeq.Add(0x9e3779b97f4a7c15)).Float64()*float64(backoff/2))
		select {
		case <-a.stop:
			return err
		case <-time.After(d):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Retries reports heartbeat attempts beyond the first, cumulatively.
func (a *Agent) Retries() int64 { return a.retries.Load() }

// renew sends one heartbeat and folds the response into the agent.
func (a *Agent) renew() error {
	req := renewRequest{
		ID:          a.cfg.NodeID,
		Addr:        a.cfg.Advertise,
		Incarnation: a.cfg.Incarnation,
		TTLMillis:   a.cfg.TTL.Milliseconds(),
	}
	if a.cfg.Load != nil {
		req.Load = a.cfg.Load()
	}
	var resp renewResponse
	if err := a.post("/v1/cluster/renew", req, &resp); err != nil {
		return err
	}
	if resp.Revoked {
		a.revOnce.Do(func() {
			a.revokeMsg = resp.Reason
			close(a.revoked)
		})
		return nil
	}
	a.mu.Lock()
	a.expires = resp.Expires
	a.members = resp.Members
	a.mu.Unlock()
	return nil
}

func (a *Agent) post(path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.RouterURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: %s", path, resp.Status)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Revoked is closed when the router refuses this incarnation's lease;
// the node should stop accepting work and drain.
func (a *Agent) Revoked() <-chan struct{} { return a.revoked }

// RevokeReason reports why the lease was revoked ("" while held).
func (a *Agent) RevokeReason() string {
	select {
	case <-a.revoked:
		return a.revokeMsg
	default:
		return ""
	}
}

// LeaseExpires returns the deadline of the last successful renewal
// (zero before the first one).
func (a *Agent) LeaseExpires() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.expires
}

// Members returns the membership view gossiped with the last renewal.
func (a *Agent) Members() []MemberInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]MemberInfo(nil), a.members...)
}

// Close stops the heartbeat loop and, if the lease is still held,
// announces a clean departure so the router hands our jobs off
// immediately instead of waiting out the lease.
func (a *Agent) Close() {
	select {
	case <-a.stop:
		return
	default:
	}
	close(a.stop)
	a.stopped.Wait()
	if a.RevokeReason() == "" {
		_ = a.post("/v1/cluster/leave", leaveRequest{
			ID:          a.cfg.NodeID,
			Incarnation: a.cfg.Incarnation,
		}, nil)
	}
}
