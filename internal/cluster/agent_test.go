package cluster

import (
	"net/http/httptest"
	"testing"
	"time"
)

// A node whose lease is revoked must learn so from its next heartbeat
// (Revoked closes → the daemon drains), and a restart with a fresh
// incarnation must be able to rejoin.
func TestAgentRejoinAfterRevocationDrains(t *testing.T) {
	r, err := NewRouter(RouterConfig{
		LeaseTTL:      500 * time.Millisecond,
		SweepInterval: time.Hour, // driven manually
		SyncInterval:  time.Hour,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	a, err := StartAgent(AgentConfig{
		RouterURL:   srv.URL,
		NodeID:      "n1",
		Advertise:   "http://127.0.0.1:1", // never dialed in this test
		TTL:         300 * time.Millisecond,
		Incarnation: 1,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}
	defer a.Close()

	if a.LeaseExpires().IsZero() {
		t.Fatal("agent should hold a lease after the initial join")
	}
	if got := len(a.Members()); got != 1 {
		t.Fatalf("gossiped member count = %d, want 1", got)
	}

	// Revoke out from under it: mark the lease left (the same terminal
	// path as a failure-detector death for renewal purposes).
	if !r.members.leave("n1", 1) {
		t.Fatal("leave should succeed")
	}
	select {
	case <-a.Revoked():
	case <-time.After(5 * time.Second):
		t.Fatal("agent never observed the revocation")
	}
	if a.RevokeReason() == "" {
		t.Fatal("revocation reason should be populated")
	}

	// Same incarnation can never rejoin (split-brain guard)...
	resp, _ := r.members.renew(renewRequest{ID: "n1", Addr: "a", Incarnation: 1}, time.Second)
	if !resp.Revoked {
		t.Fatalf("same-incarnation rejoin accepted: %+v", resp)
	}

	// ...but a restarted process (higher incarnation) joins cleanly.
	b, err := StartAgent(AgentConfig{
		RouterURL:   srv.URL,
		NodeID:      "n1",
		Advertise:   "http://127.0.0.1:1",
		TTL:         300 * time.Millisecond,
		Incarnation: 2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("StartAgent(rejoin): %v", err)
	}
	defer b.Close()
	if b.LeaseExpires().IsZero() {
		t.Fatal("restarted agent should hold a fresh lease")
	}
	select {
	case <-b.Revoked():
		t.Fatal("fresh incarnation was revoked")
	default:
	}
}
