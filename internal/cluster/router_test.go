package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// testNode is one in-process specd node behind a real HTTP server.
type testNode struct {
	svc *service.Service
	srv *httptest.Server
}

func startNode(t *testing.T, cfg service.Config) *testNode {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return &testNode{svc: svc, srv: srv}
}

// testRouter builds a router whose loops are parked (huge intervals)
// so tests drive sweepOnce/syncOnce deterministically, with a fake
// clock feeding the failure detector.
func testRouter(t *testing.T) (*Router, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r, err := NewRouter(RouterConfig{
		LeaseTTL:      time.Second,
		SweepInterval: time.Hour,
		SyncInterval:  time.Hour,
		Now:           clk.now,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r, clk
}

func joinNode(t *testing.T, r *Router, id, addr string, inc int64) {
	t.Helper()
	resp, changed := r.members.renew(renewRequest{ID: id, Addr: addr, Incarnation: inc}, r.cfg.LeaseTTL)
	if !resp.OK {
		t.Fatalf("join %s refused: %+v", id, resp)
	}
	if changed {
		r.rebuildRing()
	}
}

func quickSpec() service.JobSpec {
	return service.JobSpec{Workload: "cc", Controller: "hybrid", Rho: 0.25, Size: 120, Seed: 7, Parallel: 1}
}

// Placement must follow the ring owner and be a pure function of the
// id and membership: replaying the same ids yields the same owners.
func TestRouterPlacementDeterministic(t *testing.T) {
	n1 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})
	n2 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})
	r, _ := testRouter(t)
	joinNode(t, r, "n1", n1.srv.URL, 1)
	joinNode(t, r, "n2", n2.srv.URL, 1)

	ctx := context.Background()
	placed := make(map[string]string)
	for i := 0; i < 8; i++ {
		st, code, err := r.place(ctx, quickSpec())
		if err != nil || code != http.StatusAccepted {
			t.Fatalf("place %d: code=%d err=%v", i, code, err)
		}
		if want := func() string { r.mu.Lock(); defer r.mu.Unlock(); return r.ring.lookup(st.ID) }(); st.Node != want {
			t.Errorf("job %s placed on %s, ring owner is %s", st.ID, st.Node, want)
		}
		placed[st.ID] = st.Node
	}
	// Determinism: candidates() answers identically for identical input.
	for id, node := range placed {
		for i := 0; i < 3; i++ {
			if got := r.candidates(id)[0].ID; got != node {
				t.Fatalf("candidates(%s)[0] = %s on repeat %d, want %s", id, got, i, node)
			}
		}
	}
	// Both nodes should see their placements via the router's view.
	for id, node := range placed {
		r.mu.Lock()
		pl := r.placements[id]
		r.mu.Unlock()
		if pl == nil || pl.Node != node {
			t.Fatalf("placement table missing %s on %s", id, node)
		}
	}
}

// When the ring owner refuses (here: a node that always answers 429),
// the job must land on the least-loaded survivor instead of failing.
func TestRouterLeastLoadedFallback(t *testing.T) {
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer full.Close()
	n2 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})

	r, _ := testRouter(t)
	joinNode(t, r, "full", full.URL, 1)
	joinNode(t, r, "n2", n2.srv.URL, 1)

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		st, code, err := r.place(ctx, quickSpec())
		if err != nil || code != http.StatusAccepted {
			t.Fatalf("place: code=%d err=%v", code, err)
		}
		if st.Node != "n2" {
			t.Fatalf("job %s placed on %s, want fallback n2", st.ID, st.Node)
		}
	}
}

// A dead node's unfinished jobs hand off to a survivor, re-running
// with a bumped attempt and the synced trajectory prefix intact.
func TestRouterHandoffOnDeath(t *testing.T) {
	// HistoryCap must exceed the job's total rounds or the ring evicts
	// the handed-off prefix before the assertion reads it.
	n1 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1, HistoryCap: 1 << 16})
	n2 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1, HistoryCap: 1 << 16})
	r, clk := testRouter(t)
	joinNode(t, r, "n1", n1.srv.URL, 1)
	joinNode(t, r, "n2", n2.srv.URL, 1)

	// A slow multi-round job so it is still running at handoff time.
	slow := service.JobSpec{Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 20000, Seed: 3, Parallel: 1}
	ctx := context.Background()
	var victims []string
	for len(victims) < 1 {
		st, code, err := r.place(ctx, slow)
		if err != nil || code != http.StatusAccepted {
			t.Fatalf("place: code=%d err=%v", code, err)
		}
		if st.Node == "n1" {
			victims = append(victims, st.ID)
		}
	}
	id := victims[0]

	// Let it make progress, then sync so the router caches the prefix.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r.syncOnce()
		r.mu.Lock()
		pl := r.placements[id]
		started, rounds, prefix := pl.Started, pl.Last.Rounds, len(pl.Prefix)
		r.mu.Unlock()
		if started && rounds >= 2 && prefix >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never progressed: started=%v rounds=%d prefix=%d", id, started, rounds, prefix)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// n1 dies: its process stops answering and its lease expires while
	// n2 keeps renewing. The first sweep only suspects n1 (a probe could
	// still save it); with the server gone, probes fail, and the sweep
	// past the grace period declares it dead and hands off.
	n1.srv.Close()
	clk.advance(r.cfg.LeaseTTL / 2)
	joinNode(t, r, "n2", n2.srv.URL, 1) // renewal
	clk.advance(3 * r.cfg.LeaseTTL / 4) // n1 now past its deadline
	r.sweepOnce()                       // n1 -> suspect, first failed probe
	if m, _ := r.members.get("n1"); m.State != StateSuspect {
		t.Fatalf("n1 state = %s after first sweep, want suspect", m.State)
	}
	clk.advance(r.cfg.SuspectGrace)
	joinNode(t, r, "n2", n2.srv.URL, 1) // keep the survivor's lease fresh
	r.sweepOnce()                       // probe fails past grace -> dead -> handoff

	r.mu.Lock()
	pl := r.placements[id]
	node, attempt := pl.Node, pl.Attempt
	r.mu.Unlock()
	if node != "n2" || attempt < 2 {
		t.Fatalf("after sweep: job %s on %s attempt %d, want n2 attempt>=2", id, node, attempt)
	}

	// The survivor must run it to completion under the same id with the
	// pre-crash prefix at the front of the trajectory.
	var final service.JobStatus
	for {
		st, ok := n2.svc.JobTail(id, -1)
		if !ok {
			t.Fatalf("survivor does not know job %s", id)
		}
		if st.Terminal() {
			final = st
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal on survivor: %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != service.StateDone {
		t.Fatalf("handed-off job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Attempt < 2 {
		t.Fatalf("handed-off job attempt = %d, want >= 2", final.Attempt)
	}
	var prefixPts, rerunPts int
	for _, p := range final.Trajectory {
		if p.Attempt == 0 {
			prefixPts++
		} else if p.Attempt == final.Attempt {
			rerunPts++
		}
	}
	if prefixPts == 0 || rerunPts == 0 {
		t.Fatalf("trajectory should mix pre-crash prefix and rerun points, got prefix=%d rerun=%d", prefixPts, rerunPts)
	}
}

// While a job's owner is down, the router serves the cached last-known
// status instead of erroring, so pollers ride through the failover.
func TestRouterServesCachedStatusWhileOwnerDown(t *testing.T) {
	n1 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})
	r, clk := testRouter(t)
	joinNode(t, r, "n1", n1.srv.URL, 1)

	// A long-running job, so it is still live when its owner dies.
	ctx := context.Background()
	st, code, err := r.place(ctx, service.JobSpec{
		Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 20000, Seed: 3, Parallel: 1,
	})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("place: code=%d err=%v", code, err)
	}
	r.syncOnce()

	// Kill the node and its lease: the server is gone, so probes fail
	// and the sweep past the grace period declares it dead (no
	// survivors: the handoff stays pending).
	n1.srv.Close()
	clk.advance(2 * r.cfg.LeaseTTL)
	r.sweepOnce() // suspect
	clk.advance(r.cfg.SuspectGrace)
	r.sweepOnce() // dead

	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()
	resp, err := http.Get(rsrv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET cached: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached status answered %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Specd-Cached") != "1" {
		t.Fatalf("expected the cached-response marker header")
	}

	r.mu.Lock()
	pending := r.placements[st.ID].Pending
	r.mu.Unlock()
	if !pending {
		t.Fatalf("placement should be pending handoff with no survivors")
	}
}

// An asymmetric partition: the node's heartbeats stop reaching the
// router, but the router can still reach the node. The member must park
// in suspect — reads keep proxying to it, its jobs are never handed off
// — and a late heartbeat restores it without any job movement.
func TestRouterAsymmetricPartitionKeepsSuspectServing(t *testing.T) {
	n1 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})
	r, clk := testRouter(t)
	joinNode(t, r, "n1", n1.srv.URL, 1)

	ctx := context.Background()
	st, code, err := r.place(ctx, service.JobSpec{
		Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 20000, Seed: 3, Parallel: 1,
	})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("place: code=%d err=%v", code, err)
	}

	// Heartbeats stop, but the node's server stays up: probes succeed,
	// so no matter how many grace periods pass the node is never killed.
	clk.advance(2 * r.cfg.LeaseTTL)
	r.sweepOnce()
	clk.advance(2 * r.cfg.SuspectGrace)
	r.sweepOnce()
	if m, _ := r.members.get("n1"); m.State != StateSuspect {
		t.Fatalf("n1 state = %s, want suspect while probes succeed", m.State)
	}

	// Reads still reach the live owner, not the cached copy.
	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()
	resp, err := http.Get(rsrv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET via router: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status answered %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Specd-Cached") == "1" {
		t.Fatal("read should proxy to the reachable suspect, not serve the cache")
	}

	r.mu.Lock()
	pl := r.placements[st.ID]
	node, pending := pl.Node, pl.Pending
	r.mu.Unlock()
	if node != "n1" || pending {
		t.Fatalf("placement moved (node=%s pending=%v); a suspect's jobs must stay put", node, pending)
	}

	// /healthz surfaces the suspect.
	hres, err := http.Get(rsrv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health service.Health
	if err := json.NewDecoder(hres.Body).Decode(&health); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	hres.Body.Close()
	if len(health.SuspectMembers) != 1 || health.SuspectMembers[0] != "n1" {
		t.Fatalf("suspect_members = %v, want [n1]", health.SuspectMembers)
	}

	// The partition heals: the next heartbeat restores the lease.
	joinNode(t, r, "n1", n1.srv.URL, 1)
	if m, _ := r.members.get("n1"); m.State != StateAlive {
		t.Fatalf("n1 state = %s after heartbeat, want alive", m.State)
	}
}

// The gray-failure metric families must appear on the router's
// /metrics, with specd_suspect_members tracking the failure detector.
func TestRouterMetricsFamilies(t *testing.T) {
	n1 := startNode(t, service.Config{Workers: 2, QueueCap: 32, DefaultParallel: 1})
	r, clk := testRouter(t)
	joinNode(t, r, "n1", n1.srv.URL, 1)

	clk.advance(2 * r.cfg.LeaseTTL)
	r.sweepOnce() // n1 suspect

	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()
	resp, err := http.Get(rsrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		"specd_suspect_members 1",
		"specd_router_hedges_total 0",
		"specd_rpc_retries_total 0",
		`cluster_members{state="suspect"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
