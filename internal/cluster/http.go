package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// Handler returns the router's HTTP API. It serves the standard specd
// job surface — clients need no cluster awareness — plus the cluster
// control plane:
//
//	POST   /v1/jobs              place a job on a member (consistent
//	                             hash, least-loaded fallback)
//	GET    /v1/jobs              fan-out list across alive members,
//	                             merged with cached rows for jobs whose
//	                             owner is down
//	GET    /v1/jobs/{id}         proxy to the owner; cached last-known
//	                             status while the owner is unreachable
//	DELETE /v1/jobs/{id}         proxy a cancel to the owner
//	GET    /metrics              aggregated cluster metrics
//	GET    /healthz              router health + membership summary
//
//	POST   /v1/cluster/renew     lease heartbeat (first call joins)
//	POST   /v1/cluster/leave     clean departure
//	GET    /v1/cluster/members   membership table
//	GET    /v1/cluster/placements placement table (debug/e2e)
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handlePlace)
	mux.HandleFunc("GET /v1/jobs", r.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleCancel)
	mux.HandleFunc("POST /v1/cluster/renew", r.handleRenew)
	mux.HandleFunc("POST /v1/cluster/leave", r.handleLeave)
	mux.HandleFunc("GET /v1/cluster/members", r.handleMembers)
	mux.HandleFunc("GET /v1/cluster/placements", r.handlePlacements)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (r *Router) handlePlace(w http.ResponseWriter, req *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	st, code, err := r.place(req.Context(), spec)
	if err != nil {
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	if code >= 400 && st.ID == "" { // relayed node-side error without a status body
		writeJSON(w, code, errorBody{Error: "placement refused by node"})
		return
	}
	writeJSON(w, code, st)
}

func (r *Router) handleRenew(w http.ResponseWriter, req *http.Request) {
	var rr renewRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil || rr.ID == "" || rr.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad renew request"})
		return
	}
	resp, changed := r.members.renew(rr, r.cfg.LeaseTTL)
	if changed {
		r.rebuildRing()
		r.cfg.Logf("cluster: member %s joined at %s (incarnation %d)", rr.ID, rr.Addr, rr.Incarnation)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleLeave(w http.ResponseWriter, req *http.Request) {
	var lr leaveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lr); err != nil || lr.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad leave request"})
		return
	}
	if r.members.leave(lr.ID, lr.Incarnation) {
		r.cfg.Logf("cluster: member %s left, handing off its jobs", lr.ID)
		r.rebuildRing()
		r.handoffNode(lr.ID)
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{OK: true})
}

func (r *Router) handleMembers(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Members []MemberInfo `json:"members"`
	}{Members: r.members.view()})
}

// PlacementView is the debug row served on /v1/cluster/placements.
type PlacementView struct {
	ID        string `json:"id"`
	Node      string `json:"node"`
	Attempt   int    `json:"attempt"`
	Started   bool   `json:"started"`
	Done      bool   `json:"done"`
	Pending   bool   `json:"pending,omitempty"`
	State     string `json:"state,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	PrefixLen int    `json:"prefix_len,omitempty"`
}

func (r *Router) handlePlacements(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	out := make([]PlacementView, 0, len(r.placements))
	for _, pl := range r.placements {
		out = append(out, PlacementView{
			ID: pl.ID, Node: pl.Node, Attempt: pl.Attempt, Started: pl.Started,
			Done: pl.Done, Pending: pl.Pending, State: string(pl.Last.State),
			Rounds: pl.Last.Rounds, PrefixLen: len(pl.Prefix),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, struct {
		Placements []PlacementView `json:"placements"`
	}{Placements: out})
}

// handleJob proxies a status read to the job's owner, with failover
// behaviors that keep pollers alive across gray failures: a slow owner
// is hedged — after hedgeDelay a second request races to the ring
// successor and the first usable response wins, the loser canceled —
// while an unreachable owner, or an id the owner no longer knows
// (pre-handoff window), answers with the cached last-known status
// (trajectory replaced by the synced prefix). A suspect owner still
// serves: it is reachable even when its heartbeats are not.
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	pl, ok := r.placements[id]
	var node string
	if ok {
		node = pl.Node
	}
	r.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if m, servable := r.servableMember(node); servable {
		path := "/v1/jobs/" + id
		if req.URL.RawQuery != "" {
			path += "?" + req.URL.RawQuery
		}
		if res, won := r.hedgedGet(req, m, path, id); won {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Specd-Node", res.node)
			if res.code < 300 {
				var st service.JobStatus
				if json.Unmarshal(res.body, &st) == nil && st.ID != "" {
					st.Node = res.node
					writeJSONStatus(w, res.code, st)
					return
				}
			}
			w.WriteHeader(res.code)
			_, _ = w.Write(res.body)
			return
		}
	}
	r.serveCached(w, pl)
}

// memberResp is one member's answer to a (possibly hedged) proxy read.
type memberResp struct {
	code int
	body []byte
	node string
}

// hedgedGet races the owner against its ring successor. The hedge
// fires only after hedgeDelay of silence; the first usable answer
// (anything but a 404, a 5xx, or a transport failure) wins and the
// loser's request is canceled. When the hedge comes back unusable —
// the successor usually does not know the job — the read falls back to
// the router's cached status instead of waiting out a slow or
// partitioned owner, which is what bounds read tail latency near the
// hedge delay.
func (r *Router) hedgedGet(req *http.Request, owner MemberInfo, path, jobID string) (memberResp, bool) {
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	type result struct {
		memberResp
		err   error
		hedge bool
	}
	results := make(chan result, 2)
	fetch := func(m MemberInfo, hedge bool) {
		code, body, err := r.fetchFrom(ctx, m.Addr, path)
		results <- result{memberResp{code, body, m.ID}, err, hedge}
	}
	start := time.Now()
	outstanding := 1
	go fetch(owner, false)

	var hedgeTimer <-chan time.Time
	if delay := r.hedgeDelay(); delay >= 0 {
		tm := time.NewTimer(delay)
		defer tm.Stop()
		hedgeTimer = tm.C
	}
	for outstanding > 0 {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil && res.code != http.StatusNotFound && res.code < 500 {
				r.recordLatency(time.Since(start))
				return res.memberResp, true
			}
			if res.err != nil {
				r.proxyErrors.Add(1)
			}
			if res.hedge || outstanding == 0 {
				// Either nobody is left to answer, or the hedge verdict
				// is in: stop waiting on the slow owner, serve cached.
				return memberResp{}, false
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if m, ok := r.hedgeTarget(jobID, owner.ID); ok {
				r.hedges.Add(1)
				outstanding++
				go fetch(m, true)
			}
		case <-req.Context().Done():
			return memberResp{}, false
		}
	}
	return memberResp{}, false
}

// hedgeTarget picks the replica a hedged read goes to: the first alive
// ring successor of the job that is not the owner.
func (r *Router) hedgeTarget(jobID, ownerID string) (MemberInfo, bool) {
	for _, m := range r.candidates(jobID) {
		if m.ID != ownerID {
			return m, true
		}
	}
	return MemberInfo{}, false
}

// fetchFrom issues one proxied GET to a member. The error return is
// transport-level only.
func (r *Router) fetchFrom(ctx context.Context, addr, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+path, nil)
	if err != nil {
		return 0, nil, err
	}
	propagateDeadline(req)
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// servableMember resolves a member id to its row iff it can serve
// reads: alive, or suspect (lease expired yet still answering probes).
func (r *Router) servableMember(id string) (MemberInfo, bool) {
	m, ok := r.members.get(id)
	return m, ok && (m.State == StateAlive || m.State == StateSuspect)
}

// proxyTo relays one request to a member, returning false on a
// transport failure (the caller then serves its fallback). A 2xx
// JobStatus body is annotated with the owning node before relay;
// other statuses pass through verbatim — except a 404, which also
// falls back, because during a handoff window the owner of record may
// not know the job yet.
func (r *Router) proxyTo(w http.ResponseWriter, req *http.Request, method, url, node string) bool {
	preq, err := http.NewRequestWithContext(req.Context(), method, url, nil)
	if err != nil {
		return false
	}
	propagateDeadline(preq)
	resp, err := r.cfg.HTTPClient.Do(preq)
	if err != nil {
		r.proxyErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		r.proxyErrors.Add(1)
		return false
	}
	if resp.StatusCode == http.StatusNotFound {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Specd-Node", node)
	if resp.StatusCode < 300 {
		var st service.JobStatus
		if json.Unmarshal(body, &st) == nil && st.ID != "" {
			st.Node = node
			writeJSONStatus(w, resp.StatusCode, st)
			return true
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
	return true
}

// writeJSONStatus is writeJSON without re-setting headers (the proxy
// path has already written them).
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// serveCached answers with the router's last synced view of a job.
func (r *Router) serveCached(w http.ResponseWriter, pl *placement) {
	r.mu.Lock()
	st := pl.Last
	if st.ID == "" { // placed but never synced: synthesize a queued row
		st = service.JobStatus{ID: pl.ID, State: service.StateQueued, Spec: pl.Spec, Attempt: pl.Attempt}
	}
	st.Node = pl.Node
	st.Trajectory = append([]service.RoundPoint(nil), pl.Prefix...)
	r.mu.Unlock()
	w.Header().Set("X-Specd-Cached", "1")
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	pl, ok := r.placements[id]
	var node string
	if ok {
		node = pl.Node
	}
	r.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	m, servable := r.servableMember(node)
	if !servable {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "job owner is down; cancel after handoff completes"})
		return
	}
	if !r.proxyTo(w, req, http.MethodDelete, m.Addr+"/v1/jobs/"+id, node) {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: "owner unreachable"})
	}
}

// handleList fans out to every servable member (suspects included:
// they still answer) and merges, adding cached rows for placements
// whose owner did not answer (so the job count never dips
// mid-failover).
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	seen := make(map[string]service.JobStatus)
	for _, m := range append(r.members.alive(), r.members.suspects()...) {
		jobs, err := r.fetchJobs(m.Addr)
		if err != nil {
			r.scrapeErrors.Add(1)
			continue
		}
		for _, st := range jobs {
			st.Node = m.ID
			seen[st.ID] = st
		}
	}
	r.mu.Lock()
	for id, pl := range r.placements {
		if _, ok := seen[id]; ok {
			continue
		}
		st := pl.Last
		if st.ID == "" {
			st = service.JobStatus{ID: pl.ID, State: service.StateQueued, Spec: pl.Spec, Attempt: pl.Attempt}
		}
		st.Node = pl.Node
		st.Trajectory = nil
		seen[id] = st
	}
	r.mu.Unlock()
	out := make([]service.JobStatus, 0, len(seen))
	for _, st := range seen {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	writeJSON(w, http.StatusOK, struct {
		Jobs []service.JobStatus `json:"jobs"`
	}{Jobs: out})
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	var suspect []string
	for _, m := range r.members.suspects() {
		suspect = append(suspect, m.ID)
	}
	writeJSON(w, http.StatusOK, service.Health{
		Status:         "ok",
		Uptime:         r.Uptime().Seconds(),
		Role:           "router",
		Members:        r.members.counts(),
		SuspectMembers: suspect,
		Placements:     r.placementCount(),
	})
}

// handleMetrics serves the router's own counters plus a cluster-wide
// aggregation: every unlabeled scalar specd_* family scraped from the
// members is summed into a cluster_<family> series, and per-member
// liveness/load gauges are emitted alongside.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	header := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	members := r.members.view()
	header("cluster_members", "Cluster members by lease state.", "gauge")
	counts := map[string]int{}
	for _, m := range members {
		counts[m.State]++
	}
	for _, st := range []string{StateAlive, StateSuspect, StateDead, StateLeft} {
		fmt.Fprintf(&b, "cluster_members{state=%q} %d\n", st, counts[st])
	}
	header("cluster_member_up", "1 while the member's lease is current.", "gauge")
	for _, m := range members {
		up := 0
		if m.State == StateAlive {
			up = 1
		}
		fmt.Fprintf(&b, "cluster_member_up{node=%q} %d\n", m.ID, up)
	}
	header("specd_suspect_members", "Members whose lease expired but are not yet proven dead.", "gauge")
	fmt.Fprintf(&b, "specd_suspect_members %d\n", counts[StateSuspect])
	header("cluster_member_queue_depth", "Queue depth last reported by the member.", "gauge")
	for _, m := range members {
		fmt.Fprintf(&b, "cluster_member_queue_depth{node=%q} %d\n", m.ID, m.Load.QueueDepth)
	}
	header("cluster_member_running_jobs", "Running jobs last reported by the member.", "gauge")
	for _, m := range members {
		fmt.Fprintf(&b, "cluster_member_running_jobs{node=%q} %d\n", m.ID, m.Load.Running)
	}

	header("cluster_placements", "Jobs the router is tracking.", "gauge")
	fmt.Fprintf(&b, "cluster_placements %d\n", r.placementCount())
	header("cluster_placements_total", "Jobs placed since the router started.", "counter")
	fmt.Fprintf(&b, "cluster_placements_total %d\n", r.placedTotal.Load())
	header("cluster_handoffs_total", "Jobs re-homed from dead or departed members.", "counter")
	fmt.Fprintf(&b, "cluster_handoffs_total %d\n", r.handoffs.Load())
	header("cluster_dead_nodes_total", "Members declared dead by the failure detector.", "counter")
	fmt.Fprintf(&b, "cluster_dead_nodes_total %d\n", r.deadNodes.Load())
	header("cluster_proxy_errors_total", "Member requests that failed at the transport level.", "counter")
	fmt.Fprintf(&b, "cluster_proxy_errors_total %d\n", r.proxyErrors.Load())
	header("cluster_scrape_errors_total", "Failed member scrapes during fan-out.", "counter")
	fmt.Fprintf(&b, "cluster_scrape_errors_total %d\n", r.scrapeErrors.Load())
	header("specd_router_hedges_total", "Hedged reads fired to a successor replica.", "counter")
	fmt.Fprintf(&b, "specd_router_hedges_total %d\n", r.hedges.Load())
	header("specd_rpc_retries_total", "Member RPC attempts beyond the first.", "counter")
	fmt.Fprintf(&b, "specd_rpc_retries_total %d\n", r.rpcRetries.Load())
	header("cluster_router_uptime_seconds", "Seconds since the router started.", "gauge")
	fmt.Fprintf(&b, "cluster_router_uptime_seconds %g\n", r.Uptime().Seconds())

	// Aggregate the members' own scalar families.
	sums, order := r.scrapeAggregate()
	for _, name := range order {
		header("cluster_"+name, "Sum of "+name+" across alive members.", "counter")
		fmt.Fprintf(&b, "cluster_%s %g\n", name, sums[name])
	}

	_, _ = io.WriteString(w, b.String())
}

// scrapeAggregate sums every unlabeled scalar specd_* sample across the
// alive members, returning family sums in first-seen order.
func (r *Router) scrapeAggregate() (map[string]float64, []string) {
	sums := make(map[string]float64)
	var order []string
	for _, m := range r.members.alive() {
		body, err := r.fetchMetrics(m.Addr)
		if err != nil {
			r.scrapeErrors.Add(1)
			continue
		}
		sc := bufio.NewScanner(strings.NewReader(body))
		sc.Buffer(make([]byte, 1<<16), 1<<22)
		for sc.Scan() {
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			name, rest, ok := strings.Cut(line, " ")
			if !ok || !strings.HasPrefix(name, "specd_") || strings.Contains(name, "{") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				continue
			}
			if _, seen := sums[name]; !seen {
				order = append(order, name)
			}
			sums[name] += v
		}
	}
	return sums, order
}

func (r *Router) fetchMetrics(addr string) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cluster: %s /metrics: %s", addr, resp.Status)
	}
	return string(body), nil
}
