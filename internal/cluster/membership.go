package cluster

import (
	"sort"
	"sync"
	"time"
)

// memberTable is the router's lease table. The clock is injectable so
// tests can drive lease expiry vs. renewal races deterministically.
type memberTable struct {
	mu      sync.Mutex
	now     func() time.Time
	members map[string]*memberEntry
}

type memberEntry struct {
	info MemberInfo
	// suspectAt is when the lease expired and the member entered
	// StateSuspect; the probe grace period is measured from here.
	suspectAt time.Time
	// probeFails counts consecutive failed probes while suspect.
	probeFails int
}

func newMemberTable(now func() time.Time) *memberTable {
	if now == nil {
		now = time.Now
	}
	return &memberTable{now: now, members: make(map[string]*memberEntry)}
}

// renew processes one heartbeat and reports whether the membership set
// of alive nodes changed (the caller rebuilds the ring when it did).
//
// Incarnation rules:
//   - unknown id, or a higher incarnation than recorded: a (re)joining
//     process — fresh alive lease.
//   - lower incarnation than recorded: a zombie from before a restart —
//     revoked.
//   - equal incarnation but the lease is dead or left: the failure
//     detector already declared this process dead (its jobs may be
//     handed off) — revoked; the process must drain and restart.
//   - equal incarnation, suspect: the partition healed (or a delayed
//     heartbeat got through) before the node was proven dead — restored
//     to alive. This is the whole point of the suspect state: a node
//     that can still serve is not revoked for missed heartbeats alone.
//   - equal incarnation, alive: plain renewal.
func (t *memberTable) renew(req renewRequest, ttl time.Duration) (resp renewResponse, changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if req.TTLMillis > 0 {
		ttl = time.Duration(req.TTLMillis) * time.Millisecond
	}

	e, ok := t.members[req.ID]
	if ok {
		// Lazily expire before judging, so a heartbeat that lost the
		// race against the sweep is treated identically either way.
		if e.info.State == StateAlive && !now.Before(e.info.Expires) {
			e.info.State = StateSuspect
			e.suspectAt = e.info.Expires
		}
		switch {
		case req.Incarnation < e.info.Incarnation:
			return renewResponse{Revoked: true, Reason: "stale incarnation"}, false
		case req.Incarnation == e.info.Incarnation &&
			e.info.State != StateAlive && e.info.State != StateSuspect:
			return renewResponse{Revoked: true, Reason: "lease " + e.info.State}, false
		}
	}
	if !ok {
		e = &memberEntry{}
		t.members[req.ID] = e
	}
	changed = !ok || e.info.State != StateAlive || req.Incarnation > e.info.Incarnation
	e.info = MemberInfo{
		ID:          req.ID,
		Addr:        req.Addr,
		Incarnation: req.Incarnation,
		State:       StateAlive,
		Expires:     now.Add(ttl),
		Load:        req.Load,
	}
	e.suspectAt = time.Time{}
	e.probeFails = 0
	return renewResponse{OK: true, Expires: e.info.Expires, Members: t.viewLocked()}, changed
}

// sweep expires overdue leases into StateSuspect and returns the ids
// newly suspected this pass. Suspects are not dead yet: the caller
// probes them (see judge) and only sustained probe failure past the
// grace period triggers handoff. This keeps an asymmetric partition —
// the node's heartbeats are lost but the router can still reach it —
// from revoking a node that is still serving its jobs.
func (t *memberTable) sweep() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var suspected []string
	for id, e := range t.members {
		if e.info.State == StateAlive && !now.Before(e.info.Expires) {
			e.info.State = StateSuspect
			e.suspectAt = now
			e.probeFails = 0
			suspected = append(suspected, id)
		}
	}
	sort.Strings(suspected)
	return suspected
}

// suspects returns the suspect members, sorted by id — the probe list.
func (t *memberTable) suspects() []MemberInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []MemberInfo
	for _, e := range t.members {
		if e.info.State == StateSuspect {
			out = append(out, e.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// judge records a probe result for a suspect. A successful probe means
// the node is reachable and serving — it stays suspect (its lease is
// still unrenewed) but the failure count resets, so it is never
// declared dead while it answers. A failed probe counts toward death:
// once probes have failed and the grace period since suspicion has
// elapsed, the member transitions to StateDead and judge returns true —
// the trigger for handoff.
func (t *memberTable) judge(id string, probeOK bool, grace time.Duration) (nowDead bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.members[id]
	if !ok || e.info.State != StateSuspect {
		return false
	}
	if probeOK {
		e.probeFails = 0
		return false
	}
	e.probeFails++
	if !t.now().Before(e.suspectAt.Add(grace)) {
		e.info.State = StateDead
		return true
	}
	return false
}

// leave marks a clean departure. Stale incarnations are ignored; a
// matching or newer one transitions the lease to StateLeft and reports
// whether the member had been alive (its jobs then hand off).
func (t *memberTable) leave(id string, incarnation int64) (wasAlive bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.members[id]
	if !ok || incarnation < e.info.Incarnation {
		return false
	}
	wasAlive = e.info.State == StateAlive
	e.info.State = StateLeft
	return wasAlive
}

// alive returns the alive members, sorted by id.
func (t *memberTable) alive() []MemberInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []MemberInfo
	for _, e := range t.members {
		if e.info.State == StateAlive {
			out = append(out, e.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// view returns every member (any state), sorted by id.
func (t *memberTable) view() []MemberInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.viewLocked()
}

func (t *memberTable) viewLocked() []MemberInfo {
	out := make([]MemberInfo, 0, len(t.members))
	for _, e := range t.members {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// get returns one member's row.
func (t *memberTable) get(id string) (MemberInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.members[id]
	if !ok {
		return MemberInfo{}, false
	}
	return e.info, true
}

// counts tallies members by state for /healthz and /metrics.
func (t *memberTable) counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for _, e := range t.members {
		out[e.info.State]++
	}
	return out
}
