package cluster

import (
	"fmt"
	"testing"
)

// Identical hash inputs must place identically: routing is a pure
// function of (membership set, job id).
func TestRingDeterministic(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	a := buildRing(ids, 0)
	b := buildRing([]string{"n3", "n1", "n2"}, 0) // order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("c%d", i)
		if got, want := b.lookup(key), a.lookup(key); got != want {
			t.Fatalf("lookup(%q) differs across identically-membered rings: %q vs %q", key, got, want)
		}
		sa, sb := a.successors(key), b.successors(key)
		if len(sa) != len(ids) || len(sb) != len(ids) {
			t.Fatalf("successors(%q) should cover all members: %v / %v", key, sa, sb)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("successor order for %q differs: %v vs %v", key, sa, sb)
			}
		}
		if sa[0] != a.lookup(key) {
			t.Fatalf("successors(%q)[0] = %q, want owner %q", key, sa[0], a.lookup(key))
		}
	}
}

func TestRingBalanceAndStability(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	r := buildRing(ids, 0)
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("c%d", i))]++
	}
	for _, id := range ids {
		if c := counts[id]; c < keys/len(ids)/2 || c > keys/len(ids)*2 {
			t.Errorf("member %s owns %d of %d keys; want within 2x of %d", id, c, keys, keys/len(ids))
		}
	}

	// Short sequential ids — the router's actual id sequence — must
	// spread too: raw FNV-1a once parked all of "c1".."c99" on a single
	// member because the last byte barely reached the high bits.
	three := buildRing([]string{"n1", "n2", "n3"}, 0)
	short := make(map[string]int)
	for i := 1; i <= 99; i++ {
		short[three.lookup(fmt.Sprintf("c%d", i))]++
	}
	for _, id := range []string{"n1", "n2", "n3"} {
		if short[id] == 0 {
			t.Errorf("member %s owns none of c1..c99: %v", id, short)
		}
	}

	// Removing one member must not move keys between the survivors.
	small := buildRing([]string{"n1", "n2", "n3"}, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("c%d", i)
		before, after := r.lookup(key), small.lookup(key)
		if before != "n4" && before != after {
			moved++
		}
	}
	if moved > 0 {
		t.Errorf("%d keys moved between surviving members after n4 left; consistent hashing should move none", moved)
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, 0)
	if got := r.lookup("c1"); got != "" {
		t.Fatalf("empty ring lookup = %q, want \"\"", got)
	}
	if got := r.successors("c1"); got != nil {
		t.Fatalf("empty ring successors = %v, want nil", got)
	}
}
