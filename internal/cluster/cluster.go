// Package cluster turns a set of specd nodes into a sharded cluster
// behind a single routing front door.
//
// The design has three parts:
//
//   - Membership: nodes hold TTL leases on the router, renewed by
//     heartbeat (POST /v1/cluster/renew). A node that misses enough
//     renewals is declared dead by the router's failure detector.
//     Renewal responses carry the router's full membership view, so
//     every heartbeat doubles as a gossip round — nodes always know the
//     current cluster without a separate protocol.
//
//   - Routing: the router proxies the standard specd job API. New jobs
//     get a cluster-wide id and are placed by consistent hashing on
//     that id, falling back to the least-loaded survivor when the ring
//     owner is full or unreachable. Reads proxy to the owner; lists and
//     /metrics fan out and aggregate.
//
//   - Handoff: the router journals every placement to a write-ahead
//     log and periodically syncs each job's attempt counter and
//     trajectory tail from its owner. When a node dies, its unfinished
//     jobs are re-submitted to survivors (POST /v1/cluster/handoff on
//     the node) where the service's recovery path re-runs them from
//     spec with the synced trajectory prefix preserved. A node whose
//     lease was revoked — the router saw it dead and may already have
//     handed its jobs away — learns so from its next renewal and
//     drains instead of split-braining.
//
// Incarnation numbers (chosen once per process start) distinguish a
// restarted node from a zombie: a renewal with a higher incarnation
// replaces the old lease, one with a lower incarnation is refused.
package cluster

import "time"

// Member states as the router's failure detector sees them.
const (
	// StateAlive: lease current, receives placements and handoffs.
	StateAlive = "alive"
	// StateSuspect: lease expired but the node has not been proven dead.
	// Under an asymmetric partition the node's heartbeats may be lost
	// while the router can still reach it — so a suspect keeps serving
	// the jobs it owns (reads proxy to it, probes check on it) but
	// receives no new placements or handoffs. A renewal with the same
	// incarnation restores it to alive; sustained probe failures past
	// the suspicion grace period declare it dead.
	StateSuspect = "suspect"
	// StateDead: lease expired and probes failed past the grace period;
	// unfinished jobs are handed off.
	StateDead = "dead"
	// StateLeft: node announced a clean departure (also hands off).
	StateLeft = "left"
)

// LoadInfo is the load summary a node reports with each renewal; the
// router uses it for least-loaded fallback placement.
type LoadInfo struct {
	QueueDepth int   `json:"queue_depth"`
	Running    int64 `json:"running"`
	// Degraded reports that the node's journal hit a disk fault and it
	// is refusing new work (read-only mode). The router routes new
	// placements and handoffs around a degraded node but keeps proxying
	// reads to it.
	Degraded bool `json:"degraded,omitempty"`
	// Brownout reports that the node's admission layer is shedding its
	// lowest priority classes under sustained overload. Unlike Degraded
	// it still accepts work above the shed line, so the router only
	// deprioritizes a browned-out node (sorts it behind healthy peers)
	// rather than excluding it.
	Brownout bool `json:"brownout,omitempty"`
}

// MemberInfo is one row of the membership table, as gossiped to nodes
// in renewal responses and served on GET /v1/cluster/members.
type MemberInfo struct {
	ID          string    `json:"id"`
	Addr        string    `json:"addr"` // base URL, e.g. http://127.0.0.1:9001
	Incarnation int64     `json:"incarnation"`
	State       string    `json:"state"`
	Expires     time.Time `json:"expires"`
	Load        LoadInfo  `json:"load"`
}

// renewRequest is the heartbeat body (POST /v1/cluster/renew). The
// first renewal from a node is its join.
type renewRequest struct {
	ID          string   `json:"id"`
	Addr        string   `json:"addr"`
	Incarnation int64    `json:"incarnation"`
	TTLMillis   int64    `json:"ttl_ms"`
	Load        LoadInfo `json:"load"`
}

// renewResponse answers a heartbeat. Revoked tells the node its lease
// is gone for good under this incarnation — it must drain and restart
// with a fresh incarnation to rejoin.
type renewResponse struct {
	OK      bool         `json:"ok"`
	Revoked bool         `json:"revoked,omitempty"`
	Reason  string       `json:"reason,omitempty"`
	Expires time.Time    `json:"expires,omitempty"`
	Members []MemberInfo `json:"members,omitempty"`
}

// leaveRequest announces a clean departure (POST /v1/cluster/leave).
type leaveRequest struct {
	ID          string `json:"id"`
	Incarnation int64  `json:"incarnation"`
}
