package cluster

import "sort"

// hashRing is a consistent-hash ring over member ids. Each member
// contributes vnodes virtual points so load stays balanced with few
// members; lookups walk clockwise from the key's hash. The ring is
// immutable once built — membership changes build a new one, which
// keeps lookups lock-free for readers holding a snapshot.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// defaultVNodes is the virtual-node count per member. 64 keeps the
// max/min load spread under ~30% for small clusters, which is plenty
// when least-loaded fallback smooths the rest.
const defaultVNodes = 64

// buildRing constructs a ring over the given member ids.
func buildRing(ids []string, vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &hashRing{points: make([]ringPoint, 0, len(ids)*vnodes)}
	var buf [8]byte
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			buf[2] = byte(v >> 16)
			buf[3] = byte(v >> 24)
			h := hash64(append(buf[:4], id...))
			r.points = append(r.points, ringPoint{hash: h, id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // total order: ties never flip
	})
	return r
}

// lookup returns the member owning key, or "" on an empty ring.
func (r *hashRing) lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64([]byte(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// successors returns every distinct member in ring order starting at
// key's owner — the deterministic fallback sequence for placement.
func (r *hashRing) successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64([]byte(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// hash64 is FNV-1a (64-bit) with a murmur-style avalanche finalizer.
// Raw FNV barely diffuses the last byte into the high bits, and ring
// lookups order on the full 64-bit value — short sequential ids like
// "c1".."c99" would otherwise land in one arc and pile every placement
// onto one member. The finalizer spreads single-byte differences across
// the whole word.
func hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
