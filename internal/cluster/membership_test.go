package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the membership table deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }

func newTestTable() (*memberTable, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newMemberTable(clk.now), clk
}

func renewOK(t *testing.T, tbl *memberTable, id string, inc int64, ttl time.Duration) renewResponse {
	t.Helper()
	resp, _ := tbl.renew(renewRequest{ID: id, Addr: "http://x/" + id, Incarnation: inc}, ttl)
	if !resp.OK || resp.Revoked {
		t.Fatalf("renew(%s, inc=%d) refused: %+v", id, inc, resp)
	}
	return resp
}

// The renewal-vs-expiry race, order 1: the heartbeat lands just before
// the sweep. The lease must survive and the sweep must not kill it.
func TestRenewalBeatsExpiry(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 1, ttl)

	clk.advance(ttl - time.Millisecond) // 1ms before the deadline
	renewOK(t, tbl, "n1", 1, ttl)       // heartbeat wins the race

	clk.advance(2 * time.Millisecond) // past the *old* deadline
	if dead := tbl.sweep(); len(dead) != 0 {
		t.Fatalf("sweep declared %v dead after an in-time renewal", dead)
	}
	m, _ := tbl.get("n1")
	if m.State != StateAlive {
		t.Fatalf("n1 state = %s, want alive", m.State)
	}
}

// The same race, order 2: the lease expires first (whether the sweep
// has run yet or not), then the heartbeat arrives. The node must be
// told its lease is gone — it may have had jobs handed off.
func TestExpiryBeatsRenewal(t *testing.T) {
	for _, sweepFirst := range []bool{true, false} {
		tbl, clk := newTestTable()
		ttl := time.Second
		renewOK(t, tbl, "n1", 1, ttl)

		clk.advance(ttl) // exactly at the deadline: expired
		if sweepFirst {
			if dead := tbl.sweep(); len(dead) != 1 || dead[0] != "n1" {
				t.Fatalf("sweep = %v, want [n1]", dead)
			}
		}
		resp, _ := tbl.renew(renewRequest{ID: "n1", Addr: "a", Incarnation: 1}, ttl)
		if !resp.Revoked {
			t.Fatalf("sweepFirst=%v: late renewal under the same incarnation not revoked: %+v", sweepFirst, resp)
		}
	}
}

// A higher incarnation is a restarted process and may always rejoin; a
// lower one is a zombie and never can.
func TestIncarnationRules(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 5, ttl)

	// Zombie with an older incarnation: refused even while the current
	// lease is alive.
	if resp, _ := tbl.renew(renewRequest{ID: "n1", Incarnation: 4, Addr: "a"}, ttl); !resp.Revoked {
		t.Fatalf("stale incarnation accepted: %+v", resp)
	}

	// Death, then rejoin with a fresh incarnation: accepted.
	clk.advance(2 * ttl)
	tbl.sweep()
	resp := renewOK(t, tbl, "n1", 6, ttl)
	if len(resp.Members) != 1 || resp.Members[0].State != StateAlive {
		t.Fatalf("rejoined member view = %+v, want one alive row", resp.Members)
	}
}

func TestLeaveHandsOffOnce(t *testing.T) {
	tbl, _ := newTestTable()
	renewOK(t, tbl, "n1", 1, time.Second)
	if !tbl.leave("n1", 1) {
		t.Fatal("leave of an alive member should report wasAlive")
	}
	if tbl.leave("n1", 1) {
		t.Fatal("second leave should be a no-op")
	}
	if resp, _ := tbl.renew(renewRequest{ID: "n1", Incarnation: 1, Addr: "a"}, time.Second); !resp.Revoked {
		t.Fatalf("renewal after leave under the same incarnation not revoked: %+v", resp)
	}
	// A stale leave must not kill a newer incarnation.
	renewOK(t, tbl, "n1", 2, time.Second)
	if tbl.leave("n1", 1) {
		t.Fatal("stale leave acted on a newer incarnation")
	}
	if m, _ := tbl.get("n1"); m.State != StateAlive {
		t.Fatalf("n1 state = %s after stale leave, want alive", m.State)
	}
}

// Gossip: every renewal response carries the full membership view.
func TestRenewalGossipsView(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 1, ttl)
	renewOK(t, tbl, "n2", 1, ttl)
	clk.advance(2 * ttl)
	tbl.sweep() // both dead
	resp := renewOK(t, tbl, "n1", 2, ttl)
	states := map[string]string{}
	for _, m := range resp.Members {
		states[m.ID] = m.State
	}
	if states["n1"] != StateAlive || states["n2"] != StateDead {
		t.Fatalf("gossiped view = %v, want n1 alive + n2 dead", states)
	}
}
