package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the membership table deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }

func newTestTable() (*memberTable, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newMemberTable(clk.now), clk
}

func renewOK(t *testing.T, tbl *memberTable, id string, inc int64, ttl time.Duration) renewResponse {
	t.Helper()
	resp, _ := tbl.renew(renewRequest{ID: id, Addr: "http://x/" + id, Incarnation: inc}, ttl)
	if !resp.OK || resp.Revoked {
		t.Fatalf("renew(%s, inc=%d) refused: %+v", id, inc, resp)
	}
	return resp
}

// The renewal-vs-expiry race, order 1: the heartbeat lands just before
// the sweep. The lease must survive and the sweep must not kill it.
func TestRenewalBeatsExpiry(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 1, ttl)

	clk.advance(ttl - time.Millisecond) // 1ms before the deadline
	renewOK(t, tbl, "n1", 1, ttl)       // heartbeat wins the race

	clk.advance(2 * time.Millisecond) // past the *old* deadline
	if dead := tbl.sweep(); len(dead) != 0 {
		t.Fatalf("sweep declared %v dead after an in-time renewal", dead)
	}
	m, _ := tbl.get("n1")
	if m.State != StateAlive {
		t.Fatalf("n1 state = %s, want alive", m.State)
	}
}

// The same race, order 2: the lease expires first (whether the sweep
// has run yet or not), then the heartbeat arrives. Expiry alone no
// longer revokes: the node parks in suspect and the late heartbeat
// restores it. Only once probes have proven it dead — its jobs may be
// handed off — is the same-incarnation heartbeat refused for good.
func TestExpiryBeatsRenewal(t *testing.T) {
	for _, sweepFirst := range []bool{true, false} {
		tbl, clk := newTestTable()
		ttl := time.Second
		renewOK(t, tbl, "n1", 1, ttl)

		clk.advance(ttl) // exactly at the deadline: expired
		if sweepFirst {
			if sus := tbl.sweep(); len(sus) != 1 || sus[0] != "n1" {
				t.Fatalf("sweep = %v, want [n1]", sus)
			}
		}
		resp, _ := tbl.renew(renewRequest{ID: "n1", Addr: "a", Incarnation: 1}, ttl)
		if !resp.OK || resp.Revoked {
			t.Fatalf("sweepFirst=%v: late renewal should restore the suspect lease: %+v", sweepFirst, resp)
		}
		if m, _ := tbl.get("n1"); m.State != StateAlive {
			t.Fatalf("sweepFirst=%v: n1 state = %s after restore, want alive", sweepFirst, m.State)
		}

		// Probes prove it dead: now the heartbeat is refused.
		clk.advance(2 * ttl)
		tbl.sweep()
		if !tbl.judge("n1", false, 0) {
			t.Fatal("judge with zero grace should declare the suspect dead")
		}
		resp, _ = tbl.renew(renewRequest{ID: "n1", Addr: "a", Incarnation: 1}, ttl)
		if !resp.Revoked {
			t.Fatalf("sweepFirst=%v: renewal after proven death not revoked: %+v", sweepFirst, resp)
		}
	}
}

// The suspect lifecycle: expiry suspects, a node that answers probes is
// never declared dead no matter how long its heartbeats stay lost, and
// sustained probe failure kills it only past the grace period.
func TestSuspectLifecycle(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	grace := 2 * ttl
	renewOK(t, tbl, "n1", 1, ttl)

	clk.advance(ttl)
	tbl.sweep()
	if m, _ := tbl.get("n1"); m.State != StateSuspect {
		t.Fatalf("n1 state = %s after expiry, want suspect", m.State)
	}

	// Asymmetric partition: heartbeats lost, probes answered. The node
	// must survive arbitrarily many grace periods.
	for i := 0; i < 10; i++ {
		clk.advance(grace)
		if tbl.judge("n1", true, grace) {
			t.Fatal("a suspect that answers probes must not be declared dead")
		}
	}
	if m, _ := tbl.get("n1"); m.State != StateSuspect {
		t.Fatalf("n1 state = %s, want still suspect", m.State)
	}

	// The partition heals: one heartbeat restores the lease untouched.
	renewOK(t, tbl, "n1", 1, ttl)
	if m, _ := tbl.get("n1"); m.State != StateAlive {
		t.Fatalf("n1 state = %s after heartbeat, want alive", m.State)
	}

	// Real death: probes fail. Inside the grace window the node stays
	// suspect; past it, it dies.
	clk.advance(ttl)
	tbl.sweep()
	if tbl.judge("n1", false, grace) {
		t.Fatal("a failed probe inside the grace period must not kill the suspect")
	}
	clk.advance(grace)
	if !tbl.judge("n1", false, grace) {
		t.Fatal("failed probes past the grace period should declare the suspect dead")
	}
	if m, _ := tbl.get("n1"); m.State != StateDead {
		t.Fatalf("n1 state = %s, want dead", m.State)
	}
}

// A higher incarnation is a restarted process and may always rejoin; a
// lower one is a zombie and never can.
func TestIncarnationRules(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 5, ttl)

	// Zombie with an older incarnation: refused even while the current
	// lease is alive.
	if resp, _ := tbl.renew(renewRequest{ID: "n1", Incarnation: 4, Addr: "a"}, ttl); !resp.Revoked {
		t.Fatalf("stale incarnation accepted: %+v", resp)
	}

	// Death, then rejoin with a fresh incarnation: accepted.
	clk.advance(2 * ttl)
	tbl.sweep()
	resp := renewOK(t, tbl, "n1", 6, ttl)
	if len(resp.Members) != 1 || resp.Members[0].State != StateAlive {
		t.Fatalf("rejoined member view = %+v, want one alive row", resp.Members)
	}
}

func TestLeaveHandsOffOnce(t *testing.T) {
	tbl, _ := newTestTable()
	renewOK(t, tbl, "n1", 1, time.Second)
	if !tbl.leave("n1", 1) {
		t.Fatal("leave of an alive member should report wasAlive")
	}
	if tbl.leave("n1", 1) {
		t.Fatal("second leave should be a no-op")
	}
	if resp, _ := tbl.renew(renewRequest{ID: "n1", Incarnation: 1, Addr: "a"}, time.Second); !resp.Revoked {
		t.Fatalf("renewal after leave under the same incarnation not revoked: %+v", resp)
	}
	// A stale leave must not kill a newer incarnation.
	renewOK(t, tbl, "n1", 2, time.Second)
	if tbl.leave("n1", 1) {
		t.Fatal("stale leave acted on a newer incarnation")
	}
	if m, _ := tbl.get("n1"); m.State != StateAlive {
		t.Fatalf("n1 state = %s after stale leave, want alive", m.State)
	}
}

// Gossip: every renewal response carries the full membership view.
func TestRenewalGossipsView(t *testing.T) {
	tbl, clk := newTestTable()
	ttl := time.Second
	renewOK(t, tbl, "n1", 1, ttl)
	renewOK(t, tbl, "n2", 1, ttl)
	clk.advance(2 * ttl)
	tbl.sweep() // both suspect
	if !tbl.judge("n2", false, 0) {
		t.Fatal("judge should declare n2 dead")
	}
	resp := renewOK(t, tbl, "n1", 2, ttl)
	states := map[string]string{}
	for _, m := range resp.Members {
		states[m.ID] = m.State
	}
	if states["n1"] != StateAlive || states["n2"] != StateDead {
		t.Fatalf("gossiped view = %v, want n1 alive + n2 dead", states)
	}
}
