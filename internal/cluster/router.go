package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/rng"
	"repro/internal/service"
)

// RouterConfig tunes the cluster front door. Zero values take the
// documented defaults.
type RouterConfig struct {
	// DataDir, when set, holds the router's placement write-ahead log
	// so a router restart keeps routing jobs it placed before. The
	// lease table is deliberately ephemeral: nodes re-join within one
	// heartbeat of a router restart.
	DataDir string
	// LeaseTTL is the default lease when a renewal names none (3s).
	LeaseTTL time.Duration
	// SweepInterval is the failure-detector cadence (LeaseTTL/3).
	SweepInterval time.Duration
	// SyncInterval is the placement-sync cadence: how often the router
	// refreshes each job's attempt counter and trajectory tail from its
	// owner (1s).
	SyncInterval time.Duration
	// PrefixTail bounds the trajectory prefix cached per running job
	// for handoff (64 points).
	PrefixTail int
	// OrphanGrace is how long a placement may point at a member the
	// (restarted) router has never seen before its jobs are handed off
	// anyway (3×LeaseTTL).
	OrphanGrace time.Duration
	// VNodes is the consistent-hash virtual-node count (64).
	VNodes int
	// Fsync is the WAL durability policy (journal.SyncAlways).
	Fsync journal.Policy
	// HTTPClient talks to members (default: 5s timeout).
	HTTPClient *http.Client
	// SuspectGrace is how long a member may stay suspect (lease expired
	// but not proven dead) before failed probes declare it dead and its
	// jobs hand off (2×LeaseTTL). Probes that succeed keep resetting the
	// failure count, so a node cut off from the router by an asymmetric
	// partition — it cannot heartbeat, but it answers probes — is never
	// revoked while it still serves.
	SuspectGrace time.Duration
	// ProbeTimeout bounds each /healthz probe of a suspect (1s).
	ProbeTimeout time.Duration
	// HedgeDelay is how long a proxied read waits on the placement owner
	// before hedging a second request to the ring successor. Zero means
	// adaptive: the observed p99 proxy latency, clamped to
	// [10ms, HTTPClient timeout/2]. Negative disables hedging.
	HedgeDelay time.Duration
	// RetryMax caps RPC attempts per member for placement and handoff
	// posts (3). Retries back off exponentially with jitter from
	// RetryBase (25ms), capped at 500ms.
	RetryMax  int
	RetryBase time.Duration
	// Logf receives router lifecycle lines (optional).
	Logf func(format string, args ...any)
	// Now is the failure detector's clock (tests inject one).
	Now func() time.Time
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 3
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = time.Second
	}
	if c.PrefixTail <= 0 {
		c.PrefixTail = 64
	}
	if c.OrphanGrace <= 0 {
		c.OrphanGrace = 3 * c.LeaseTTL
	}
	if c.Fsync == "" {
		c.Fsync = journal.SyncAlways
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if c.SuspectGrace <= 0 {
		c.SuspectGrace = 2 * c.LeaseTTL
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// placement is the router's record of one job: where it lives, the
// attempt counter and trajectory tail last synced from the owner, and
// the cached status served when the owner is unreachable.
type placement struct {
	ID      string
	Spec    service.JobSpec
	Node    string
	Attempt int
	Started bool // observed past admission (rounds > 0 or running)
	Done    bool // observed terminal
	Pending bool // owner died and no survivor accepted the handoff yet
	Last    service.JobStatus
	Prefix  []service.RoundPoint

	orphanAt time.Time // first sweep that found the owner unknown
}

// Router is the cluster front door: membership authority, job placer,
// read proxy, and handoff driver.
type Router struct {
	cfg     RouterConfig
	members *memberTable

	mu         sync.Mutex
	ring       *hashRing
	placements map[string]*placement
	seq        int64

	wal *journal.Journal

	placedTotal  atomic.Int64 // jobs placed since start
	handoffs     atomic.Int64 // handoffs accepted by survivors
	deadNodes    atomic.Int64 // members declared dead
	proxyErrors  atomic.Int64 // member requests that failed at transport level
	scrapeErrors atomic.Int64 // failed member scrapes during fan-out
	hedges       atomic.Int64 // hedged reads fired to a successor replica
	rpcRetries   atomic.Int64 // RPC attempts beyond the first, across all member calls

	// latMu guards the sliding window of proxied-read latencies that
	// feeds the adaptive hedge delay.
	latMu      sync.Mutex
	latSamples []time.Duration
	latNext    int

	jitterSeq atomic.Uint64 // backoff jitter stream

	start   time.Time
	stop    chan struct{}
	stopped sync.WaitGroup
	closed  sync.Once
}

// walRecord is one router WAL entry. Place records carry the spec (the
// router must be able to re-submit after the owner and itself both
// restarted); handoff and terminal records just move the pointer.
type walRecord struct {
	Type    string           `json:"type"` // "place" | "handoff" | "terminal"
	ID      string           `json:"id"`
	Node    string           `json:"node,omitempty"`
	Attempt int              `json:"attempt,omitempty"`
	Spec    *service.JobSpec `json:"spec,omitempty"`
}

// walSnapshot is the compacted WAL state.
type walSnapshot struct {
	Version    int         `json:"version"`
	Seq        int64       `json:"seq"`
	Placements []walPlaced `json:"placements"`
}

type walPlaced struct {
	ID      string          `json:"id"`
	Node    string          `json:"node"`
	Attempt int             `json:"attempt"`
	Done    bool            `json:"done,omitempty"`
	Spec    service.JobSpec `json:"spec"`
}

// NewRouter builds a router, replaying the placement WAL when DataDir
// is set, and starts the failure-detector and sync loops.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:        cfg,
		members:    newMemberTable(cfg.Now),
		ring:       buildRing(nil, cfg.VNodes),
		placements: make(map[string]*placement),
		start:      time.Now(),
		stop:       make(chan struct{}),
	}
	r.jitterSeq.Store(uint64(time.Now().UnixNano()))
	if cfg.DataDir != "" {
		if err := r.replayWAL(); err != nil {
			return nil, err
		}
		w, err := journal.Open(cfg.DataDir, journal.Options{Fsync: cfg.Fsync, Logf: cfg.Logf})
		if err != nil {
			return nil, err
		}
		r.wal = w
	}
	r.stopped.Add(2)
	go r.sweepLoop()
	go r.syncLoop()
	return r, nil
}

func (r *Router) replayWAL() error {
	rep, err := journal.Replay(r.cfg.DataDir, journal.Options{Logf: r.cfg.Logf})
	if err != nil {
		return fmt.Errorf("cluster: replaying router wal: %w", err)
	}
	if rep.Snapshot != nil {
		var snap walSnapshot
		if err := json.Unmarshal(rep.Snapshot, &snap); err != nil {
			return fmt.Errorf("cluster: bad router snapshot: %w", err)
		}
		r.seq = snap.Seq
		for _, p := range snap.Placements {
			r.placements[p.ID] = &placement{
				ID: p.ID, Spec: p.Spec, Node: p.Node, Attempt: p.Attempt, Done: p.Done,
			}
		}
	}
	for _, raw := range rep.Records {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			r.cfg.Logf("cluster: skipping bad router wal record: %v", err)
			continue
		}
		switch rec.Type {
		case "place":
			pl := &placement{ID: rec.ID, Node: rec.Node, Attempt: rec.Attempt}
			if rec.Spec != nil {
				pl.Spec = *rec.Spec
			}
			r.placements[rec.ID] = pl
			if n, ok := parseSeqID(rec.ID); ok && n > r.seq {
				r.seq = n
			}
		case "handoff":
			if pl, ok := r.placements[rec.ID]; ok {
				pl.Node = rec.Node
				pl.Attempt = rec.Attempt
			}
		case "terminal":
			if pl, ok := r.placements[rec.ID]; ok {
				pl.Done = true
			}
		}
	}
	if n := len(r.placements); n > 0 {
		r.cfg.Logf("cluster: router wal restored %d placements (seq %d)", n, r.seq)
	}
	return nil
}

// parseSeqID extracts N from a router-assigned id "cN".
func parseSeqID(id string) (int64, bool) {
	if !strings.HasPrefix(id, "c") {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	return n, err == nil
}

func (r *Router) appendWAL(rec walRecord) {
	if r.wal == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if err := r.wal.Append(raw); err != nil {
		r.cfg.Logf("cluster: router wal append failed: %v", err)
	}
}

// Close stops the loops and compacts the WAL into a snapshot.
func (r *Router) Close() {
	r.closed.Do(func() {
		close(r.stop)
		r.stopped.Wait()
		if r.wal != nil {
			err := r.wal.Compact(func() []byte {
				r.mu.Lock()
				defer r.mu.Unlock()
				snap := walSnapshot{Version: 1, Seq: r.seq}
				for _, pl := range r.placements {
					snap.Placements = append(snap.Placements, walPlaced{
						ID: pl.ID, Node: pl.Node, Attempt: pl.Attempt, Done: pl.Done, Spec: pl.Spec,
					})
				}
				sort.Slice(snap.Placements, func(i, j int) bool {
					return snap.Placements[i].ID < snap.Placements[j].ID
				})
				raw, _ := json.Marshal(snap)
				return raw
			})
			if err != nil {
				r.cfg.Logf("cluster: router wal compact failed: %v", err)
			}
			_ = r.wal.Close()
		}
	})
}

// rebuildRing snapshots the alive set into a fresh hash ring.
func (r *Router) rebuildRing() {
	alive := r.members.alive()
	ids := make([]string, len(alive))
	for i, m := range alive {
		ids[i] = m.ID
	}
	r.mu.Lock()
	r.ring = buildRing(ids, r.cfg.VNodes)
	r.mu.Unlock()
}

// candidates returns the placement order for a job id: the ring owner
// first (with its ring successors as deterministic tie-breakers), then
// any remaining alive members by ascending load. The ring walk already
// covers every alive member, so the load sort only reorders the
// non-owner tail. Members that reported a degraded journal are
// excluded — they would 503 every submit anyway, so the router routes
// around them instead of burning an RPC to learn it.
func (r *Router) candidates(id string) []MemberInfo {
	alive := r.members.alive()
	if len(alive) == 0 {
		return nil
	}
	healthy := alive[:0:0]
	for _, m := range alive {
		if !m.Load.Degraded {
			healthy = append(healthy, m)
		}
	}
	alive = healthy
	if len(alive) == 0 {
		return nil
	}
	byID := make(map[string]MemberInfo, len(alive))
	for _, m := range alive {
		byID[m.ID] = m
	}
	r.mu.Lock()
	order := r.ring.successors(id)
	r.mu.Unlock()
	var out []MemberInfo
	seen := make(map[string]bool)
	for _, mid := range order {
		if m, ok := byID[mid]; ok && !seen[mid] {
			seen[mid] = true
			out = append(out, m)
		}
	}
	if len(out) > 1 {
		tail := out[1:]
		sort.SliceStable(tail, func(i, j int) bool {
			li := tail[i].Load.QueueDepth + int(tail[i].Load.Running)
			lj := tail[j].Load.QueueDepth + int(tail[j].Load.Running)
			if li != lj {
				return li < lj
			}
			return tail[i].ID < tail[j].ID
		})
	}
	for _, m := range alive { // members not on the ring yet (stale snapshot)
		if !seen[m.ID] {
			out = append(out, m)
		}
	}
	// Browned-out nodes are shedding their lowest priority classes:
	// still usable (unlike degraded ones, which were filtered above),
	// but placed last so new work lands on healthy peers first. The
	// stable sort preserves the ring/least-loaded order within each
	// group.
	sort.SliceStable(out, func(i, j int) bool {
		return !out[i].Load.Brownout && out[j].Load.Brownout
	})
	return out
}

// nextID assigns the next cluster-wide job id.
func (r *Router) nextID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return "c" + strconv.FormatInt(r.seq, 10)
}

// place submits spec to the cluster under a fresh cluster-wide id.
// It walks the candidate order, skipping members that are full (429),
// draining (503), or unreachable; a 400 is the spec's fault and is
// returned as-is. The returned status carries the owning node and the
// HTTP code to relay.
func (r *Router) place(ctx context.Context, spec service.JobSpec) (service.JobStatus, int, error) {
	id := r.nextID()
	payload, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, http.StatusInternalServerError, err
	}
	cands := r.candidates(id)
	if len(cands) == 0 {
		return service.JobStatus{}, http.StatusServiceUnavailable,
			fmt.Errorf("cluster: no alive members")
	}
	var lastErr error
	for _, m := range cands {
		st, code, err := r.postJob(ctx, m.Addr, id, payload)
		switch {
		case err != nil: // transport failure: next candidate
			r.proxyErrors.Add(1)
			lastErr = err
			continue
		case code == http.StatusAccepted || code == http.StatusOK:
			st.Node = m.ID
			r.recordPlacement(id, spec, m.ID)
			return st, http.StatusAccepted, nil
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("cluster: %s refused placement (%d)", m.ID, code)
			continue
		default: // 400 and friends: the spec's problem, relay verbatim
			return st, code, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no member accepted the job")
	}
	return service.JobStatus{}, http.StatusServiceUnavailable, lastErr
}

func (r *Router) recordPlacement(id string, spec service.JobSpec, node string) {
	r.mu.Lock()
	r.placements[id] = &placement{ID: id, Spec: spec, Node: node, Attempt: 1}
	r.mu.Unlock()
	r.placedTotal.Add(1)
	r.appendWAL(walRecord{Type: "place", ID: id, Node: node, Attempt: 1, Spec: &spec})
}

// propagateDeadline copies the request context's deadline into the
// cross-hop deadline header, so a member stops working on a call whose
// originator has already given up.
func propagateDeadline(req *http.Request) {
	if dl, ok := req.Context().Deadline(); ok {
		req.Header.Set(service.DeadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
}

// retryDo runs one member RPC with capped exponential backoff and
// jitter. build must return a fresh request per attempt (bodies are
// consumed). Only transport errors retry — an HTTP answer, whatever
// the code, is the member's answer and comes back as-is.
func (r *Router) retryDo(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < r.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			r.rpcRetries.Add(1)
			if !r.backoff(ctx, attempt-1) {
				break
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		propagateDeadline(req)
		resp, err := r.cfg.HTTPClient.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, lastErr
}

// backoff sleeps the jittered exponential delay for retry n (0-based):
// uniform in [d/2, d) where d doubles from RetryBase, capped at 500ms.
// Returns false when ctx ends first.
func (r *Router) backoff(ctx context.Context, n int) bool {
	d := r.cfg.RetryBase << n
	if max := 500 * time.Millisecond; d > max {
		d = max
	}
	jit := rng.New(r.jitterSeq.Add(0x9e3779b97f4a7c15)).Float64()
	d = d/2 + time.Duration(jit*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// latWindow is the sliding-window size of the proxy-latency estimator.
const latWindow = 256

// recordLatency feeds one successful proxied-read latency into the
// window behind the adaptive hedge delay.
func (r *Router) recordLatency(d time.Duration) {
	r.latMu.Lock()
	defer r.latMu.Unlock()
	if len(r.latSamples) < latWindow {
		r.latSamples = append(r.latSamples, d)
		return
	}
	r.latSamples[r.latNext] = d
	r.latNext = (r.latNext + 1) % latWindow
}

// hedgeDelay returns how long a proxied read waits on the owner before
// hedging: the configured value when set (negative = never), otherwise
// the observed p99 proxy latency clamped to [10ms, half the member
// client's timeout], defaulting to 100ms until enough samples exist.
func (r *Router) hedgeDelay() time.Duration {
	if r.cfg.HedgeDelay != 0 {
		return r.cfg.HedgeDelay
	}
	r.latMu.Lock()
	samples := append([]time.Duration(nil), r.latSamples...)
	r.latMu.Unlock()
	max := 2500 * time.Millisecond
	if t := r.cfg.HTTPClient.Timeout; t > 0 {
		max = t / 2
	}
	if len(samples) < 16 {
		d := 100 * time.Millisecond
		if d > max {
			d = max
		}
		return d
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[len(samples)*99/100]
	if p99 < 10*time.Millisecond {
		p99 = 10 * time.Millisecond
	}
	if p99 > max {
		p99 = max
	}
	return p99
}

// postJob POSTs a pre-assigned job to one member. The error return is
// transport-level only; HTTP answers come back as (status, code, nil).
func (r *Router) postJob(ctx context.Context, addr, id string, payload []byte) (service.JobStatus, int, error) {
	resp, err := r.retryDo(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			addr+"/v1/jobs", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.JobIDHeader, id)
		return req, nil
	})
	if err != nil {
		return service.JobStatus{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return service.JobStatus{}, 0, err
	}
	var st service.JobStatus
	_ = json.Unmarshal(body, &st)
	return st, resp.StatusCode, nil
}

// sweepLoop is the failure detector: expire leases, hand off the jobs
// of the newly dead, and retry handoffs still pending.
func (r *Router) sweepLoop() {
	defer r.stopped.Done()
	tick := time.NewTicker(r.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.sweepOnce()
		}
	}
}

func (r *Router) sweepOnce() {
	// Expired leases become suspects, not corpses: the member drops off
	// the placement ring (no new work) but keeps serving the jobs it
	// owns while probes decide its fate. This is what lets a node on
	// the losing side of an asymmetric partition — its heartbeats are
	// lost, the router can still reach it — survive without a revoked
	// lease or a double-executed job.
	suspected := r.members.sweep()
	if len(suspected) > 0 {
		r.rebuildRing()
		for _, id := range suspected {
			r.cfg.Logf("cluster: member %s lease expired, now suspect (probing)", id)
		}
	}
	var dead []string
	for _, m := range r.members.suspects() {
		ok := r.probe(m.Addr)
		if r.members.judge(m.ID, ok, r.cfg.SuspectGrace) {
			dead = append(dead, m.ID)
		}
	}
	if len(dead) > 0 {
		r.deadNodes.Add(int64(len(dead)))
		for _, id := range dead {
			r.cfg.Logf("cluster: member %s failed probes past suspect grace, handing off its jobs", id)
			r.handoffNode(id)
		}
	}
	r.reconcile()
}

// probe checks whether a suspect still answers its health endpoint.
// Any HTTP response counts as proof of life — a degraded or draining
// node is unwell, not dead, and handing off its running jobs would
// double-execute them.
func (r *Router) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return true
}

// handoffNode re-places every unfinished job owned by the given member.
func (r *Router) handoffNode(node string) {
	r.mu.Lock()
	var todo []*placement
	for _, pl := range r.placements {
		if pl.Node == node && !pl.Done {
			todo = append(todo, pl)
		}
	}
	r.mu.Unlock()
	sort.Slice(todo, func(i, j int) bool { return todo[i].ID < todo[j].ID })
	for _, pl := range todo {
		r.handoffJob(pl)
	}
}

// handoffJob re-submits one placement to a survivor. A job observed
// running gets its attempt bumped (the new run is a re-execution); a
// job that never started keeps attempt 1 and re-queues normally.
func (r *Router) handoffJob(pl *placement) {
	r.mu.Lock()
	if pl.Done {
		r.mu.Unlock()
		return
	}
	deadNode := pl.Node
	attempt := pl.Attempt
	if pl.Started {
		attempt++
	}
	hreq := service.HandoffRequest{
		ID:      pl.ID,
		Spec:    pl.Spec,
		Attempt: attempt,
		Prefix:  append([]service.RoundPoint(nil), pl.Prefix...),
	}
	r.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	payload, err := json.Marshal(hreq)
	if err != nil {
		return
	}
	for _, m := range r.candidates(pl.ID) {
		if m.ID == deadNode {
			continue
		}
		code, err := r.postHandoff(ctx, m.Addr, payload)
		if err != nil {
			r.proxyErrors.Add(1)
			continue
		}
		if code == http.StatusAccepted || code == http.StatusOK {
			r.mu.Lock()
			pl.Node = m.ID
			pl.Attempt = attempt
			pl.Pending = false
			pl.orphanAt = time.Time{}
			r.mu.Unlock()
			r.handoffs.Add(1)
			r.appendWAL(walRecord{Type: "handoff", ID: pl.ID, Node: m.ID, Attempt: attempt})
			r.cfg.Logf("cluster: job %s handed off %s -> %s (attempt %d, %d prefix points)",
				pl.ID, deadNode, m.ID, attempt, len(hreq.Prefix))
			return
		}
	}
	r.mu.Lock()
	pl.Pending = true
	r.mu.Unlock()
	r.cfg.Logf("cluster: job %s from %s has no survivor yet; will retry", pl.ID, deadNode)
}

func (r *Router) postHandoff(ctx context.Context, addr string, payload []byte) (int, error) {
	resp, err := r.retryDo(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			addr+"/v1/cluster/handoff", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, nil
}

// reconcile retries pending handoffs and detects orphans: placements
// pointing at members this (possibly restarted) router has never seen.
// Orphans get a grace window to re-join before their jobs hand off.
func (r *Router) reconcile() {
	now := r.cfg.Now()
	r.mu.Lock()
	var retry []*placement
	for _, pl := range r.placements {
		if pl.Done {
			continue
		}
		if pl.Pending {
			retry = append(retry, pl)
			continue
		}
		if m, ok := r.members.get(pl.Node); !ok {
			if pl.orphanAt.IsZero() {
				pl.orphanAt = now
			} else if now.Sub(pl.orphanAt) >= r.cfg.OrphanGrace {
				retry = append(retry, pl)
			}
		} else if m.State == StateAlive {
			pl.orphanAt = time.Time{}
		}
	}
	r.mu.Unlock()
	sort.Slice(retry, func(i, j int) bool { return retry[i].ID < retry[j].ID })
	for _, pl := range retry {
		r.handoffJob(pl)
	}
}

// syncLoop keeps the placement table fresh: each pass fans out
// GET /v1/jobs to every alive member, adopts attempt counters and
// terminal states, and refreshes the trajectory tail of running jobs
// so a later handoff carries their pre-crash prefix.
func (r *Router) syncLoop() {
	defer r.stopped.Done()
	tick := time.NewTicker(r.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.syncOnce()
		}
	}
}

func (r *Router) syncOnce() {
	// Suspects are synced too: they are still running their jobs, and a
	// fresh trajectory tail is exactly what a later handoff needs.
	for _, m := range append(r.members.alive(), r.members.suspects()...) {
		jobs, err := r.fetchJobs(m.Addr)
		if err != nil {
			r.scrapeErrors.Add(1)
			continue
		}
		for _, st := range jobs {
			r.mu.Lock()
			pl, ok := r.placements[st.ID]
			if !ok || pl.Node != m.ID {
				r.mu.Unlock()
				continue
			}
			if st.Attempt > pl.Attempt {
				pl.Attempt = st.Attempt
			}
			if st.Rounds > 0 || st.State == service.StateRunning || st.StartedAt != nil {
				pl.Started = true
			}
			st.Node = m.ID
			pl.Last = st
			wantPrefix := !st.Terminal() && pl.Started
			if st.Terminal() && !pl.Done {
				pl.Done = true
				r.mu.Unlock()
				r.appendWAL(walRecord{Type: "terminal", ID: st.ID, Node: m.ID})
				continue
			}
			r.mu.Unlock()
			if wantPrefix {
				if tail, err := r.fetchTail(m.Addr, st.ID); err == nil && len(tail) > 0 {
					r.mu.Lock()
					pl.Prefix = tail
					r.mu.Unlock()
				}
			}
		}
	}
}

func (r *Router) fetchJobs(addr string) ([]service.JobStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s /v1/jobs: %s", addr, resp.Status)
	}
	var out struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

func (r *Router) fetchTail(addr, id string) ([]service.RoundPoint, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		addr+"/v1/jobs/"+id+"?tail="+strconv.Itoa(r.cfg.PrefixTail), nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: tail fetch failed")
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return st.Trajectory, nil
}

// Uptime reports time since the router started.
func (r *Router) Uptime() time.Duration { return time.Since(r.start) }

// placementCount reports tracked (non-deleted) placements.
func (r *Router) placementCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.placements)
}
