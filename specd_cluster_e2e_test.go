package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// placementsView mirrors the router's /v1/cluster/placements payload.
type placementsView struct {
	Placements []struct {
		ID        string `json:"id"`
		Node      string `json:"node"`
		Attempt   int    `json:"attempt"`
		Started   bool   `json:"started"`
		Done      bool   `json:"done"`
		State     string `json:"state"`
		Rounds    int    `json:"rounds"`
		PrefixLen int    `json:"prefix_len"`
	} `json:"placements"`
}

func fetchPlacements(t *testing.T, routerURL string) placementsView {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/cluster/placements")
	if err != nil {
		t.Fatalf("placements: %v", err)
	}
	defer resp.Body.Close()
	var pv placementsView
	if err := json.NewDecoder(resp.Body).Decode(&pv); err != nil {
		t.Fatalf("placements decode: %v", err)
	}
	return pv
}

// TestSpecdClusterNodeKillHandoff is the cluster's headline e2e: a
// router fronts three nodes, a soak of jobs spreads across them, one
// node is SIGKILLed mid-run, and every job still reaches a terminal
// state — the victim's running jobs re-homed to survivors with a
// bumped attempt counter and their pre-crash trajectory prefix intact,
// while the router's /healthz answers 200 throughout.
func TestSpecdClusterNodeKillHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")

	router, routerURL := startSpecd(t, bin,
		"-mode", "router", "-lease-ttl", "750ms", "-sweep-interval", "100ms",
		"-sync-interval", "100ms", "-prefix-tail", "64")
	_ = router

	nodes := make(map[string]*specdProc, 3)
	for _, id := range []string{"n1", "n2", "n3"} {
		p, _ := startSpecd(t, bin,
			"-join", routerURL, "-node-id", id, "-lease-ttl", "750ms",
			"-workers", "2", "-parallel", "1", "-history", "65536")
		p.waitLine(t, "specd: joined cluster", 20*time.Second)
		nodes[id] = p
	}

	// Router health watcher: /healthz must answer 200 for the whole run.
	healthCtx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	var healthFailures atomic.Int64
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		for healthCtx.Err() == nil {
			req, _ := http.NewRequestWithContext(healthCtx, http.MethodGet, routerURL+"/healthz", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				if healthCtx.Err() == nil {
					healthFailures.Add(1)
				}
			} else {
				if resp.StatusCode != http.StatusOK {
					healthFailures.Add(1)
				}
				resp.Body.Close()
			}
			select {
			case <-healthCtx.Done():
			case <-time.After(25 * time.Millisecond):
			}
		}
	}()

	c := client.New(routerURL)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Six slow mesh jobs to be mid-flight at the kill, six quick cc
	// jobs as background traffic.
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := c.Submit(ctx, service.JobSpec{
			Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 40000, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatalf("submit mesh %d: %v", i, err)
		}
		if st.Node == "" {
			t.Fatalf("router did not report a placement node for %s", st.ID)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 6; i++ {
		st, err := c.Submit(ctx, service.JobSpec{
			Workload: "cc", Controller: "hybrid", Size: 400, Seed: uint64(i + 100),
		})
		if err != nil {
			t.Fatalf("submit cc %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	// Pick a victim: a node with a running job that has made enough
	// progress that the router has synced a trajectory prefix for it.
	var victim string
	victimJobs := make(map[string]bool) // started jobs on the victim at kill time
	for deadline := time.Now().Add(60 * time.Second); ; {
		pv := fetchPlacements(t, routerURL)
		byNode := make(map[string][]string)
		for _, pl := range pv.Placements {
			if pl.Started && !pl.Done && pl.Rounds >= 4 && pl.PrefixLen >= 1 {
				byNode[pl.Node] = append(byNode[pl.Node], pl.ID)
			}
		}
		for n, js := range byNode {
			if len(js) > len(victimJobs) {
				victim = n
				victimJobs = make(map[string]bool)
				for _, id := range js {
					victimJobs[id] = true
				}
			}
		}
		if victim != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no node accumulated running jobs with synced prefixes:\n%+v", pv)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("killing %s with %d running jobs: %v", victim, len(victimJobs), victimJobs)
	if err := nodes[victim].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL %s: %v", victim, err)
	}

	// Every job — including the victim's — must reach a terminal state
	// through the router.
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("waiting for %s: %v (last state %s)", id, err, st.State)
		}
		if st.State != service.StateDone {
			t.Errorf("job %s finished %s (%s), want done", id, st.State, st.Error)
		}
	}

	// Handed-off jobs carry attempt >= 2 and keep the pre-crash prefix
	// ahead of the rerun's tagged points.
	for id := range victimJobs {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("final status of %s: %v", id, err)
		}
		if st.Node == victim || st.Node == "" {
			t.Errorf("job %s still reported on %q, want a survivor", id, st.Node)
		}
		if st.Attempt < 2 {
			t.Errorf("handed-off job %s attempt = %d, want >= 2", id, st.Attempt)
		}
		var prefixPts, rerunPts int
		for _, p := range st.Trajectory {
			if p.Attempt == 0 {
				prefixPts++
			} else if p.Attempt >= 2 {
				rerunPts++
			}
		}
		if prefixPts == 0 || rerunPts == 0 {
			t.Errorf("job %s trajectory prefix=%d rerun=%d; want both pre-crash and rerun points",
				id, prefixPts, rerunPts)
		}
	}

	// The router observed the death and re-homed work.
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		t.Fatalf("router metrics: %v", err)
	}
	var metrics strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		metrics.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	for _, want := range []string{"cluster_dead_nodes_total 1", "cluster_handoffs_total"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("router metrics missing %q:\n%s", want, metrics.String())
		}
	}
	if !strings.Contains(metrics.String(), fmt.Sprintf("cluster_member_up{node=%q} 0", victim)) {
		t.Errorf("router metrics do not mark %s down", victim)
	}

	stopHealth()
	<-healthDone
	if n := healthFailures.Load(); n > 0 {
		t.Errorf("router /healthz failed %d times during the run; want 0", n)
	}
}

// TestSpecloadClusterDrive runs the load generator against a live
// router + two nodes, exercising the cluster client path end to end
// and the per-target latency summary.
func TestSpecloadClusterDrive(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	specd := buildCmd(t, "specd")
	specload := buildCmd(t, "specload")

	_, routerURL := startSpecd(t, specd,
		"-mode", "router", "-lease-ttl", "750ms", "-sweep-interval", "100ms",
		"-sync-interval", "100ms")
	for _, id := range []string{"n1", "n2"} {
		p, _ := startSpecd(t, specd,
			"-join", routerURL, "-node-id", id, "-lease-ttl", "750ms",
			"-workers", "2", "-parallel", "1")
		p.waitLine(t, "specd: joined cluster", 20*time.Second)
	}

	out, err := exec.Command(specload,
		"-addr", routerURL, "-jobs", "6", "-workload", "cc", "-size", "300",
		"-expect-reject=false").CombinedOutput()
	if err != nil {
		t.Fatalf("specload: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "6 submitted, 6 accepted, 0 rejected (429), 0 retried, 0 failed") {
		t.Errorf("unexpected specload summary:\n%s", s)
	}
	if !strings.Contains(s, "role router") {
		t.Errorf("specload did not report the router role:\n%s", s)
	}
	if !strings.Contains(s, "specload: latency") || !strings.Contains(s, "p99=") {
		t.Errorf("specload did not print latency histograms:\n%s", s)
	}
	if !strings.Contains(s, "node=n1") && !strings.Contains(s, "node=n2") {
		t.Errorf("job lines do not carry placement nodes:\n%s", s)
	}
}
