// Benchmarks regenerating the paper's figures and evaluation claims.
// Each figure has one or more benchmarks; custom metrics report the
// quantities the paper plots (conflict ratios, convergence rounds), so
// `go test -bench=. -benchmem` doubles as the experiment harness. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package repro

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/apps/boruvka"
	"repro/internal/apps/cluster"
	"repro/internal/apps/des"
	"repro/internal/apps/maxflow"
	"repro/internal/apps/mesh"
	"repro/internal/apps/sp"
	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/speculation"
	"repro/internal/workset"
)

// --- Fig. 1: one round of the optimistic-parallelization model -------

func BenchmarkFig1ModelRound(b *testing.B) {
	r := rng.New(1)
	base := graph.RandomWithAvgDegree(r, 2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := base.Clone()
		s := sched.New(g, r)
		b.StartTimer()
		s.Step(64)
	}
}

// --- Fig. 2: conflict-ratio curves, n=2000 d=16 ----------------------

// benchFig2Point measures r̄(m) at the paper's mid-curve point m = n/4
// and reports it as a custom metric.
func benchFig2Point(b *testing.B, g *graph.Graph, seed uint64) {
	r := rng.New(seed)
	m := g.NumNodes() / 4
	last := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = sched.ConflictRatioMC(g, r, m, 50)
	}
	b.ReportMetric(last, "conflict-ratio")
}

func BenchmarkFig2RandomGraph(b *testing.B) {
	benchFig2Point(b, graph.RandomWithAvgDegree(rng.New(2), 2000, 16), 3)
}

func BenchmarkFig2CliquesPlusIsolated(b *testing.B) {
	// Half the nodes in cliques of 33, half isolated: average degree 16.
	benchFig2Point(b, graph.CliquesPlusIsolated(30, 33, 1010), 4)
}

func BenchmarkFig2WorstCaseBound(b *testing.B) {
	last := 0.0
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 2000; m += 40 {
			last = analytic.Cor2ConflictBound(2000, 16, float64(m))
		}
	}
	b.ReportMetric(last, "bound-at-n")
}

// --- Fig. 3 / §4.1: controller convergence ---------------------------

// benchController runs a controller from m0=2 on a static random graph
// and reports the §4.1 convergence metric (rounds to reach ±30% of μ).
func benchController(b *testing.B, mk func() control.Controller) {
	r := rng.New(5)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	mu := control.TargetM(g, r.Split(), 0.20, 400)
	conv := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := control.RunLoopStatic(g, r.Split(), mk(), 200)
		conv = float64(tr.ConvergenceStep(float64(mu), 0.30, 8))
	}
	b.ReportMetric(conv, "rounds-to-converge")
}

func BenchmarkFig3Hybrid(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewHybrid(control.DefaultHybridConfig(0.20))
	})
}

func BenchmarkFig3ModelBased(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewModelBased(0.20, 2)
	})
}

func BenchmarkFig3RecurrenceA(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewRecurrenceA(0.20, 2)
	})
}

func BenchmarkFig3RecurrenceB(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewRecurrenceB(0.20, 2)
	})
}

func BenchmarkFig3Bisection(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewBisection(0.20, 2)
	})
}

func BenchmarkFig3AIMD(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewAIMD(0.20, 2)
	})
}

// --- §4.1 ablations ---------------------------------------------------

func benchAblation(b *testing.B, mutate func(*control.HybridConfig)) {
	r := rng.New(6)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	std := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := control.DefaultHybridConfig(0.20)
		mutate(&cfg)
		tr := control.RunLoopStatic(g, r.Split(), control.NewHybrid(cfg), 300)
		_, std = tr.SteadyStateStats(120)
	}
	b.ReportMetric(std, "steady-state-std")
}

func BenchmarkAblationFullHybrid(b *testing.B) {
	benchAblation(b, func(*control.HybridConfig) {})
}

func BenchmarkAblationNoWindow(b *testing.B) {
	benchAblation(b, func(c *control.HybridConfig) { c.T = 1; c.SmallMT = 1 })
}

func BenchmarkAblationNoDeadband(b *testing.B) {
	benchAblation(b, func(c *control.HybridConfig) {
		c.Alpha1 = 1e-9
		c.SmallMAlpha1 = 1e-9
	})
}

func BenchmarkAblationNoSmallMRegime(b *testing.B) {
	benchAblation(b, func(c *control.HybridConfig) { c.SmallMThreshold = 0 })
}

// --- Example 1 / Thm. 3 ------------------------------------------------

func BenchmarkExample1Expected(b *testing.B) {
	last := 0.0
	for i := 0; i < b.N; i++ {
		last = analytic.Example1Expected(32*32, 32, 33)
	}
	b.ReportMetric(last, "expected-committed")
}

func BenchmarkThm3Exact(b *testing.B) {
	last := 0.0
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 2040; m += 40 {
			last = analytic.WorstCaseConflictRatio(2040, 16, m)
		}
	}
	b.ReportMetric(last, "bound-at-n")
}

// --- Phase tracking (§4.1 Delaunay claim) -----------------------------

func BenchmarkPhaseTracking(b *testing.B) {
	recovery := 0.0
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(7 + i))
		ps := profile.NewPhaseShifter(r, []profile.PhaseSpec{
			{Rounds: 50, N: 2000, Degree: 64},
			{Rounds: 100, N: 2000, Degree: 4},
		})
		h := control.NewHybrid(control.DefaultHybridConfig(0.20))
		var mAfterJump []int
		for !ps.Done() {
			g := ps.Graph()
			m := h.M()
			mm := m
			if n := g.NumNodes(); mm > n {
				mm = n
			}
			ratio := 0.0
			if mm > 0 {
				order := g.SampleNodes(r, mm)
				ratio = float64(mm-graph.GreedyMISSize(g, order)) / float64(mm)
			}
			h.Observe(ratio)
			if ps.Phase() == 1 {
				mAfterJump = append(mAfterJump, m)
			}
			ps.Tick()
		}
		// Rounds after the jump until m exceeds 5× the scarce-phase level.
		recovery = float64(len(mAfterJump))
		for j, m := range mAfterJump {
			if m > 90 { // 5 × μ(d=64) ≈ 5×18
				recovery = float64(j)
				break
			}
		}
	}
	b.ReportMetric(recovery, "rounds-to-retarget")
}

// --- End-to-end applications on the speculative runtime ---------------

func BenchmarkAppMeshRefine(b *testing.B) {
	ratio := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(11 + i))
		m := mesh.NewSquare(0, 1)
		for j := 0; j < 40; j++ {
			m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
		}
		ref := mesh.NewSpeculativeRefiner(m, mesh.Quality{MaxArea: 0.001},
			func(n int) int { return r.Intn(n) })
		ref.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		ratio = ref.Executor().OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

func BenchmarkAppBoruvka(b *testing.B) {
	ratio := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(12 + i))
		g := boruvka.NewRandomConnected(r, 1000, 3000)
		s := boruvka.NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
		s.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		ratio = s.Executor().OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

func BenchmarkAppSurveyProp(b *testing.B) {
	ratio := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(13 + i))
		f := sp.NewRandom3SAT(r, 300, 750)
		st := sp.NewState(f, r.Split())
		s := sp.NewSpeculativeSP(st, 1e-4, func(n int) int { return r.Intn(n) })
		s.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		ratio = s.Executor().OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

func BenchmarkAppClustering(b *testing.B) {
	ratio := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(14 + i))
		c := cluster.New(cluster.RandomPoints(r, 600))
		s := cluster.NewSpeculative(c, 1, func(n int) int { return r.Intn(n) })
		s.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		ratio = s.Executor().OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

// --- Mesh refinement strategy ablation ---------------------------------

func benchMeshStrategy(b *testing.B, offCenter bool) {
	inserted := 0.0
	for i := 0; i < b.N; i++ {
		r := rng.New(41)
		m := mesh.NewSquare(0, 1)
		for j := 0; j < 60; j++ {
			m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
		}
		q := mesh.Quality{MinAngleDeg: 24, MaxArea: 0.002, OffCenter: offCenter}
		st := m.Refine(q, 0)
		inserted = float64(st.Inserted)
	}
	b.ReportMetric(inserted, "points-inserted")
}

func BenchmarkMeshCircumcenter(b *testing.B) { benchMeshStrategy(b, false) }
func BenchmarkMeshOffCenter(b *testing.B)    { benchMeshStrategy(b, true) }

// --- Smart start (§4 / Cor. 3) ----------------------------------------

func BenchmarkSmartStartConvergence(b *testing.B) {
	benchController(b, func() control.Controller {
		return control.NewHybridSmartStart(0.20, 2000, 16)
	})
}

// --- Ordered execution (§5 future work) -------------------------------

func BenchmarkAppEventSim(b *testing.B) {
	wasted := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := des.NewTandem(uint64(21+i), 0.2, 0.15, 0.25, 0.2)
		sim := des.NewSpeculativeSim(net, 200, 0.05)
		sim.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		wasted = sim.Executor().OverallConflictRatio()
	}
	b.ReportMetric(wasted, "wasted-ratio")
}

func BenchmarkOrderedRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := speculation.NewOrderedExecutor()
		for j := 0; j < 256; j++ {
			e.Add(benchOrderedTask{k: speculation.Key{Time: float64(j)},
				it: speculation.NewItem(int64(j))})
		}
		b.StartTimer()
		e.Round(256)
	}
}

type benchOrderedTask struct {
	k  speculation.Key
	it *speculation.Item
}

func (t benchOrderedTask) Key() speculation.Key { return t.k }
func (t benchOrderedTask) Run(ctx *speculation.OrderedCtx) error {
	ctx.Claim(t.it)
	return nil
}

// --- Work-set selection policies --------------------------------------

func benchWorksetPolicy(b *testing.B, mk func() speculation.HandleSet) {
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		g := graph.CliqueUnion(300, 5)
		wl := speculation.NewGraphWorkload(g)
		e := speculation.NewExecutorWithWorkset(mk())
		wl.Populate(e)
		for e.Pending() > 0 {
			e.Round(24)
		}
		ratio = e.OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

func BenchmarkWorksetRandom(b *testing.B) {
	benchWorksetPolicy(b, func() speculation.HandleSet {
		return workset.NewRandom(rng.New(31))
	})
}

func BenchmarkWorksetFIFO(b *testing.B) {
	benchWorksetPolicy(b, func() speculation.HandleSet { return workset.NewFIFO() })
}

func BenchmarkWorksetLIFO(b *testing.B) {
	benchWorksetPolicy(b, func() speculation.HandleSet { return workset.NewLIFO() })
}

func BenchmarkAppMaxflow(b *testing.B) {
	ratio := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(51 + i))
		net := maxflow.RandomNetwork(r, 100, 400, 30)
		s := maxflow.NewSpeculativePR(net, 0, net.N-1,
			func(n int) int { return r.Intn(n) })
		s.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1<<30)
		ratio = s.Executor().OverallConflictRatio()
	}
	b.ReportMetric(ratio, "conflict-ratio")
}

// --- Runtime micro-benchmarks -----------------------------------------

func BenchmarkExecutorRoundIndependent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := speculation.NewExecutor(nil)
		for j := 0; j < 256; j++ {
			e.Add(speculation.TaskFunc(func(*speculation.Ctx) error { return nil }))
		}
		b.StartTimer()
		e.Round(256)
	}
}

func BenchmarkExecutorRoundContended(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := speculation.NewExecutor(nil)
		it := speculation.NewItem(0)
		for j := 0; j < 256; j++ {
			e.Add(speculation.TaskFunc(func(ctx *speculation.Ctx) error {
				return ctx.Acquire(it)
			}))
		}
		b.StartTimer()
		e.Round(256)
	}
}

func BenchmarkGreedyMIS(b *testing.B) {
	r := rng.New(15)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	order := g.SampleNodes(r, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.GreedyMISSize(g, order)
	}
}

func BenchmarkGraphSampleNodes(b *testing.B) {
	r := rng.New(16)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SampleNodes(r, 64)
	}
}

func BenchmarkHybridObserve(b *testing.B) {
	h := control.NewHybrid(control.DefaultHybridConfig(0.25))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.2)
	}
}
