package repro

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/service/client"
)

// switchTransport toggles a chaos transport on and off mid-run, so a
// test can arm a partition after the cluster has formed and heal it
// later without rebuilding clients.
type switchTransport struct {
	armed atomic.Bool
	chaos http.RoundTripper
}

func (s *switchTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if s.armed.Load() {
		return s.chaos.RoundTrip(req)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestSpecdPartitionGrayFailures is the gray-failure headline e2e: a
// router fronts three in-process nodes while the chaos layer injects
// the three canonical gray failures at once —
//
//   - an asymmetric partition: n2's heartbeats stop reaching the
//     router, but the router still reaches n2, so n2 must go suspect
//     (never dead) and keep serving reads with no handoff;
//   - a slow node: every router→n3 request takes ~1s, so proxied reads
//     of n3's jobs must be bounded by the hedge delay, not the injected
//     latency;
//   - a dying disk: n1's WAL hits ENOSPC mid-run, so n1 must flip to
//     read-only degraded mode, the router must place new work around
//     it, and healing the disk must bring it back.
//
// Through all of it every submitted job must reach StateDone with no
// job ever re-homed (attempt stays 1: nothing ran twice).
func TestSpecdPartitionGrayFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("partition e2e skipped in -short mode")
	}

	// Three nodes; n1 is durable with an injectable filesystem so its
	// disk can die mid-run.
	ffs := faultinject.NewFaultFS(nil)
	n1svc, err := service.Open(service.Config{
		Workers: 2, QueueCap: 64, DefaultParallel: 1,
		StateDir: t.TempDir(), Fsync: journal.SyncAlways,
		FS: ffs, DegradedRetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open n1: %v", err)
	}
	n2svc := service.New(service.Config{Workers: 2, QueueCap: 64, DefaultParallel: 1})
	n3svc := service.New(service.Config{Workers: 2, QueueCap: 64, DefaultParallel: 1})
	svcs := map[string]*service.Service{"n1": n1svc, "n2": n2svc, "n3": n3svc}

	hosts := make(map[string]string) // host:port -> node id, for chaos Resolve
	srvs := make(map[string]*httptest.Server)
	for _, id := range []string{"n1", "n2", "n3"} {
		svc := svcs[id]
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
		})
		srvs[id] = srv
		hosts[strings.TrimPrefix(srv.URL, "http://")] = id
	}
	resolve := func(host string) string { return hosts[host] }

	// The router's outbound chaos plan: n3 is slow from the router's
	// side of the network, always. Fixed seed: the fault schedule
	// replays byte-for-byte across runs.
	slowN3, err := faultinject.ParseChaosPlan("router>n3:lat=900ms..1100ms")
	if err != nil {
		t.Fatalf("chaos plan: %v", err)
	}
	const hedgeDelay = 100 * time.Millisecond
	ttl := 600 * time.Millisecond
	r, err := cluster.NewRouter(cluster.RouterConfig{
		LeaseTTL:      ttl,
		SweepInterval: 100 * time.Millisecond,
		SyncInterval:  100 * time.Millisecond,
		HedgeDelay:    hedgeDelay,
		Logf:          t.Logf,
		HTTPClient: &http.Client{
			Timeout: 3 * time.Second,
			Transport: &faultinject.ChaosTransport{
				Src:     "router",
				Resolve: resolve,
				Config:  faultinject.ChaosConfig{Seed: 42, Links: slowN3},
			},
		},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	routerSrv := httptest.NewServer(r.Handler())
	t.Cleanup(routerSrv.Close)

	// Agents. n2's heartbeats go through a switchable one-way cut:
	// armed, n2>router drops every request while router>n2 still works.
	cutN2Plan, err := faultinject.ParseChaosPlan("n2>router:part")
	if err != nil {
		t.Fatalf("chaos plan: %v", err)
	}
	cutN2 := &switchTransport{chaos: &faultinject.ChaosTransport{
		Src:     "n2",
		Resolve: func(string) string { return "router" },
		Config:  faultinject.ChaosConfig{Seed: 42, Links: cutN2Plan},
	}}
	for _, id := range []string{"n1", "n2", "n3"} {
		id, svc := id, svcs[id]
		cfg := cluster.AgentConfig{
			RouterURL: routerSrv.URL, NodeID: id, Advertise: srvs[id].URL,
			TTL: ttl, Incarnation: 1,
			Load: func() cluster.LoadInfo {
				degraded, _ := svc.DegradedInfo()
				return cluster.LoadInfo{
					QueueDepth: svc.QueueDepth(),
					Running:    svc.Running(),
					Degraded:   degraded,
				}
			},
			Logf: t.Logf,
		}
		if id == "n2" {
			cfg.HTTPClient = &http.Client{Timeout: 2 * time.Second, Transport: cutN2}
		}
		a, err := cluster.StartAgent(cfg)
		if err != nil {
			t.Fatalf("agent %s: %v", id, err)
		}
		t.Cleanup(a.Close)
	}

	c := client.New(routerSrv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	waitHealth := func(ok func(service.Health) bool, what string) service.Health {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			h, err := c.Health(ctx)
			if err == nil && ok(h) {
				return h
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; last health %+v (err %v)", what, h, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitHealth(func(h service.Health) bool { return h.Members["alive"] == 3 }, "3 alive members")

	// Slow mesh jobs to be mid-flight through the faults, quick cc jobs
	// as background traffic; then top up until the suspect-to-be and the
	// slow node each own at least one job.
	var ids []string
	owner := make(map[string]string)
	submit := func(spec service.JobSpec) service.JobStatus {
		t.Helper()
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if st.Node == "" {
			t.Fatalf("router did not report a placement node for %s", st.ID)
		}
		ids = append(ids, st.ID)
		owner[st.ID] = st.Node
		return st
	}
	for i := 0; i < 4; i++ {
		submit(service.JobSpec{Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 10000, Seed: uint64(i + 1)})
	}
	for i := 0; i < 6; i++ {
		submit(service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300, Seed: uint64(i + 100)})
	}
	jobOn := func(node string) string {
		for _, id := range ids {
			if owner[id] == node {
				return id
			}
		}
		return ""
	}
	for extra := 0; (jobOn("n2") == "" || jobOn("n3") == "") && extra < 24; extra++ {
		submit(service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300, Seed: uint64(extra + 200)})
	}
	if jobOn("n2") == "" || jobOn("n3") == "" {
		t.Fatalf("placement never used n2 and n3: %v", owner)
	}

	// Reads of the slow node's jobs must be bounded near the hedge
	// delay: the hedge fires at 100ms, comes back unusable (the
	// successor does not know the job), and the router serves its
	// cached status instead of waiting out the ~1s link.
	slowJob := jobOn("n3")
	var reads []time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		if _, err := c.Job(ctx, slowJob); err != nil {
			t.Fatalf("read %d of %s: %v", i, slowJob, err)
		}
		reads = append(reads, time.Since(start))
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	if p99 := reads[len(reads)-1]; p99 >= 700*time.Millisecond {
		t.Errorf("slow-node read p99 = %v; want < 700ms (hedge delay %v, injected floor 900ms)", p99, hedgeDelay)
	}

	// Arm the asymmetric partition: n2's lease expires, but probes keep
	// answering, so it must surface as suspect — not dead.
	cutN2.armed.Store(true)
	waitHealth(func(h service.Health) bool {
		return len(h.SuspectMembers) == 1 && h.SuspectMembers[0] == "n2"
	}, "n2 suspect")

	// A suspect owner still serves: reading its job through the router
	// must be a live proxied answer, not the cached fallback.
	resp, err := http.Get(routerSrv.URL + "/v1/jobs/" + jobOn("n2"))
	if err != nil {
		t.Fatalf("read n2 job during partition: %v", err)
	}
	var n2st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&n2st); err != nil {
		t.Fatalf("decode n2 job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Specd-Cached") != "" {
		t.Errorf("suspect read: status=%d cached=%q; want a live 200 from the suspect owner",
			resp.StatusCode, resp.Header.Get("X-Specd-Cached"))
	}
	if resp.Header.Get("X-Specd-Node") != "n2" {
		t.Errorf("suspect read served by %q, want n2", resp.Header.Get("X-Specd-Node"))
	}

	// Now the disk dies under n1: every fsync returns ENOSPC. The next
	// journal append flips n1 into read-only degraded mode.
	ffs.Fail("sync", "", faultinject.ErrNoSpace)
	if _, err := client.New(srvs["n1"].URL).Submit(ctx, service.JobSpec{
		Workload: "cc", Controller: "hybrid", Size: 300, Seed: 999,
	}); err == nil {
		t.Error("direct submit to n1 on a dead disk should be refused")
	} else {
		var he *client.HTTPError
		if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("direct submit to degraded n1 = %v, want a 503", err)
		}
	}

	// The router learns about the degraded journal from n1's next
	// heartbeat and routes new placements around it. With n2 suspect
	// too, the only candidate left is slow n3.
	waitMembers := func(ok func([]cluster.MemberInfo) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			resp, err := http.Get(routerSrv.URL + "/v1/cluster/members")
			var mv struct {
				Members []cluster.MemberInfo `json:"members"`
			}
			if err == nil {
				derr := json.NewDecoder(resp.Body).Decode(&mv)
				resp.Body.Close()
				if derr == nil && ok(mv.Members) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; last members %+v", what, mv.Members)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	degradedRow := func(ms []cluster.MemberInfo, want bool) bool {
		for _, m := range ms {
			if m.ID == "n1" {
				return m.Load.Degraded == want
			}
		}
		return false
	}
	waitMembers(func(ms []cluster.MemberInfo) bool { return degradedRow(ms, true) }, "n1 reported degraded")
	for i := 0; i < 2; i++ {
		if st := submit(service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300, Seed: uint64(i + 300)}); st.Node != "n3" {
			t.Errorf("job %s placed on %s while n1 degraded and n2 suspect; want n3", st.ID, st.Node)
		}
	}

	// Heal the disk: the recovery loop reopens the journal, compaction
	// re-persists everything acknowledged, and n1 leaves degraded mode.
	ffs.Clear()
	healDeadline := time.Now().Add(20 * time.Second)
	for {
		if deg, _ := n1svc.DegradedInfo(); !deg {
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatal("n1 never recovered from the healed disk")
		}
		time.Sleep(25 * time.Millisecond)
	}
	waitMembers(func(ms []cluster.MemberInfo) bool { return degradedRow(ms, false) }, "n1 healthy again")

	// Heal the partition: the next heartbeat with the same incarnation
	// must restore n2 from suspect straight to alive.
	cutN2.armed.Store(false)
	waitHealth(func(h service.Health) bool {
		return len(h.SuspectMembers) == 0 && h.Members["alive"] == 3
	}, "n2 restored to alive")

	// Every job reaches a terminal state through the router, and none
	// was ever re-homed: attempt stays 1, so nothing ran twice.
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("waiting for %s: %v (last state %s)", id, err, st.State)
		}
		if st.State != service.StateDone {
			t.Errorf("job %s finished %s (%s), want done", id, st.State, st.Error)
		}
		if st.Attempt > 1 {
			t.Errorf("job %s reached attempt %d; gray failures must not re-home work", id, st.Attempt)
		}
	}

	// The router's view agrees: no member was declared dead, nothing
	// handed off, and the hedger actually fired against the slow node.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("router metrics: %v", err)
	}
	for _, want := range []string{
		"cluster_dead_nodes_total 0",
		"cluster_handoffs_total 0",
		"specd_suspect_members 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("router metrics missing %q", want)
		}
	}
	if strings.Contains(metrics, "specd_router_hedges_total 0\n") {
		t.Error("router never hedged a read despite the slow node")
	}
}
