package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// writeTenantsFile writes the overload e2e's tenant policy: a flooder
// on weight 1 with a bounded backlog, a favored tenant on weight 3, and
// a scavenger that must trickle but never block anyone.
func writeTenantsFile(t *testing.T) string {
	t.Helper()
	tf := service.TenantsFile{
		Tenants: []service.TenantConfig{
			{Name: "flood", Weight: 1, MaxPending: 24},
			{Name: "gold", Weight: 3},
			{Name: "scav", Weight: -1, MaxPending: 8},
		},
	}
	b, err := json.Marshal(tf)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpecdOverloadFairness floods one node from three tenants with
// skewed weights and checks the admission layer's promises under
// saturation:
//
//   - the flooding tenant's backlog never exhausts the global queue —
//     the favored tenant's first submit is admitted, not 429'd;
//   - weighted-fair scheduling holds: the weight-3 tenant completes at
//     >= 2.5x the weight-1 flooder;
//   - the scavenger makes progress without a real share;
//   - /healthz answers 200 throughout the flood;
//   - a priority-9 job submitted to the saturated node preempts a
//     running low-priority job (specd_preemptions_total advances).
func TestSpecdOverloadFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")
	tenants := writeTenantsFile(t)
	p, base := startSpecd(t, bin,
		"-workers", "2", "-parallel", "1", "-queue", "48",
		"-tenants", tenants,
	)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// A paced low-priority job pins one worker so the preemption check
	// below has a victim; everything else contends for the rest.
	victim, err := c.Submit(ctx, service.JobSpec{
		Workload: "cc", Controller: "fixed", FixedM: 2, Size: 1000,
		Tenant: "scav", Priority: 1, Parallel: 1,
		Fault: &service.FaultSpec{DelayRate: 1, Delay: service.Duration(2 * time.Millisecond)},
	})
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		st, err := c.Job(ctx, victim.ID)
		if err == nil && st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never started (last %+v, err %v)", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// healthz poller: must answer 200 for the whole flood.
	healthCtx, stopHealth := context.WithCancel(ctx)
	var healthFails atomic.Int64
	var healthChecks atomic.Int64
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		for healthCtx.Err() == nil {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				healthChecks.Add(1)
				if resp.StatusCode != http.StatusOK {
					healthFails.Add(1)
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// The flood: tenant "flood" hammers the node from 4 goroutines,
	// keeping its (bounded) queue saturated for the whole window. The
	// per-task delay paces each job to ~100ms so service capacity (not
	// the HTTP submit rate) is the bottleneck — fairness is only
	// observable when both tenant queues stay backlogged.
	quick := func(tenant string, seed uint64) service.JobSpec {
		return service.JobSpec{
			Workload: "cc", Controller: "hybrid", Size: 50, Seed: seed,
			Tenant: tenant, Parallel: 1,
			Fault: &service.FaultSpec{DelayRate: 1, Delay: service.Duration(2 * time.Millisecond)},
		}
	}
	floodCtx, stopFlood := context.WithCancel(ctx)
	var floodWG sync.WaitGroup
	var floodRejects atomic.Int64
	for g := 0; g < 4; g++ {
		floodWG.Add(1)
		go func(g int) {
			defer floodWG.Done()
			for i := 0; floodCtx.Err() == nil; i++ {
				_, err := c.Submit(floodCtx, quick("flood", uint64(g*100000+i)))
				if err != nil {
					floodRejects.Add(1)
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(g)
	}

	// Let the flood saturate the queue, then the well-behaved tenant
	// shows up. Its first submit must be admitted: the flooder's
	// max_pending bound leaves global headroom by construction.
	time.Sleep(300 * time.Millisecond)
	goldFirst, err := c.Submit(ctx, quick("gold", 1))
	if err != nil {
		t.Fatalf("gold tenant's first submit rejected during flood: %v", err)
	}

	// Keep both tenants saturated for a fairness window: gold submits
	// from 2 goroutines too.
	goldCtx, stopGold := context.WithCancel(ctx)
	var goldWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		goldWG.Add(1)
		go func(g int) {
			defer goldWG.Done()
			for i := 0; goldCtx.Err() == nil; i++ {
				_, err := c.Submit(goldCtx, quick("gold", uint64(g*100000+i)))
				if err != nil {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(g)
	}
	// Scavenger trickle submissions.
	scavCtx, stopScav := context.WithCancel(ctx)
	var scavWG sync.WaitGroup
	scavWG.Add(1)
	go func() {
		defer scavWG.Done()
		for i := 0; scavCtx.Err() == nil; i++ {
			c.Submit(scavCtx, quick("scav", uint64(i)))
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Mid-flood: a priority-9 job preempts the running priority-1
	// victim instead of waiting behind the backlog.
	if _, err := c.Submit(ctx, func() service.JobSpec {
		s := quick("gold", 999)
		s.Priority = service.MaxPriority
		return s
	}()); err != nil {
		t.Fatalf("priority-9 submit rejected: %v", err)
	}
	p.waitLine(t, "(priority 9) preempting", 30*time.Second)
	p.waitLine(t, "paused for a higher-priority job", 30*time.Second)

	readStats := func() (completed map[string]float64, preemptions float64) {
		t.Helper()
		metrics, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		completed = map[string]float64{}
		for _, line := range strings.Split(metrics, "\n") {
			var v float64
			switch {
			case strings.HasPrefix(line, "specd_tenant_completed_total{"):
				var tenant string
				if _, err := fmt.Sscanf(line, "specd_tenant_completed_total{tenant=%q} %f", &tenant, &v); err == nil {
					completed[tenant] = v
				}
			case strings.HasPrefix(line, "specd_preemptions_total "):
				fmt.Sscanf(line, "specd_preemptions_total %f", &preemptions)
			}
		}
		return completed, preemptions
	}

	// Fairness window: measure completion DELTAS while both tenants are
	// saturated, so the flood's head start doesn't pollute the ratio.
	time.Sleep(500 * time.Millisecond) // let gold's backlog fill
	before, _ := readStats()
	time.Sleep(8 * time.Second)
	after, preemptions := readStats()
	stopFlood()
	stopGold()
	stopScav()
	floodWG.Wait()
	goldWG.Wait()
	scavWG.Wait()

	if preemptions < 1 {
		t.Errorf("specd_preemptions_total = %v, want >= 1 after the priority-9 arrival", preemptions)
	}
	gold := after["gold"] - before["gold"]
	flood := after["flood"] - before["flood"]
	scav := after["scav"] - before["scav"]
	if flood < 4 || gold < 10 {
		t.Fatalf("fairness window too small to judge: gold=%v flood=%v completions", gold, flood)
	}
	if ratio := gold / flood; ratio < 2.5 {
		t.Errorf("completion ratio gold/flood = %.2f (gold=%v flood=%v), want >= 2.5 at weights 3:1",
			ratio, gold, flood)
	}
	if scav < 1 {
		t.Errorf("scavenger tenant completed %v jobs in the window, want >= 1 (must not starve)", scav)
	}
	if gf := floodRejects.Load(); gf == 0 {
		t.Error("flood was never rejected — queue was not saturated, fairness window proves nothing")
	}

	// The flood never took healthz down.
	stopHealth()
	healthWG.Wait()
	if healthChecks.Load() == 0 {
		t.Fatal("healthz poller never completed a check")
	}
	if healthFails.Load() > 0 {
		t.Errorf("healthz returned non-200 %d/%d times during the flood",
			healthFails.Load(), healthChecks.Load())
	}

	// The preempted victim and gold's first job still complete after the
	// storm.
	for _, id := range []string{victim.ID, goldFirst.ID} {
		st, err := c.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != service.StateDone {
			t.Errorf("job %s: state %s after the flood, want done", id, st.State)
		}
	}
	// The victim really was preempted (not just slow).
	st, err := c.Job(ctx, victim.ID)
	if err != nil {
		t.Fatalf("victim: %v", err)
	}
	if st.Preemptions < 1 {
		t.Errorf("victim Preemptions=%d, want >= 1", st.Preemptions)
	}
}
