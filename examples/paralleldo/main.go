// Parallel-do example: the Galois-style ForEach/Loop API — write an
// amorphous data-parallel loop in a few lines and let the runtime
// handle speculation, conflicts, retries, and processor allocation.
//
// The workload: concurrent account transfers. Each transfer locks its
// two accounts; transfers sharing an account conflict and retry. The
// invariant (total balance conserved) is checked at the end.
//
//	go run ./examples/paralleldo
package main

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/rng"
	"repro/internal/speculation"
)

type transfer struct {
	from, to int
	amount   int
}

func main() {
	r := rng.New(123)
	const accounts = 64
	const transfers = 5000

	balance := make([]int, accounts)
	items := make([]*speculation.Item, accounts)
	for i := range balance {
		balance[i] = 1000
		items[i] = speculation.NewItem(int64(i))
	}
	total := accounts * 1000

	work := make([]transfer, transfers)
	for i := range work {
		a, b := r.Intn(accounts), r.Intn(accounts)
		for b == a {
			b = r.Intn(accounts)
		}
		work[i] = transfer{from: a, to: b, amount: 1 + r.Intn(50)}
	}

	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := speculation.ForEach(work, func(t transfer, ctx *speculation.Ctx) error {
		// Lock both accounts (the conflict declaration)...
		if err := ctx.AcquireAll(items[t.from], items[t.to]); err != nil {
			return err
		}
		// ...then mutate at commit time: no rollback needed.
		ctx.OnCommit(func() {
			if balance[t.from] >= t.amount {
				balance[t.from] -= t.amount
				balance[t.to] += t.amount
			}
		})
		return nil
	}, ctrl, 1<<30)

	fmt.Printf("transfers: %d committed, %d retried (ratio %.2f) in %d rounds\n",
		res.UsefulWork, res.WastedWork,
		float64(res.WastedWork)/float64(res.ProcRounds), res.Rounds)
	fmt.Printf("efficiency: %.2f  (useful work per processor-round)\n", res.Efficiency())

	check := 0
	for _, b := range balance {
		check += b
	}
	if check != total {
		fmt.Printf("INVARIANT BROKEN: total %d, want %d\n", check, total)
		return
	}
	fmt.Printf("balance conserved: %d across %d accounts ✓\n", check, accounts)
}
