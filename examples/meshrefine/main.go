// Mesh refinement example: Delaunay mesh refinement — the paper's
// running example of amorphous data-parallelism — executed on the
// optimistic runtime with adaptive processor allocation.
//
// Bad triangles are speculative tasks; two refinements conflict when
// their cavities overlap. Watch the controller ramp m up as refinement
// fans out and back down as work thins.
//
//	go run ./examples/meshrefine
package main

import (
	"fmt"
	"os"

	"repro/internal/apps/mesh"
	"repro/internal/control"
	"repro/internal/rng"
)

func main() {
	r := rng.New(2026)

	// Seed a triangulation of the unit square with 100 random points.
	m := mesh.NewSquare(0, 1)
	for i := 0; i < 100; i++ {
		m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
	}
	quality := mesh.Quality{MaxArea: 0.0004, MinAngleDeg: 18}
	fmt.Printf("initial: %d triangles, %d bad (max area %.4f, min angle %v°)\n",
		m.NumTriangles(), len(m.BadTriangles(quality)), quality.MaxArea, quality.MinAngleDeg)

	ref := mesh.NewSpeculativeRefiner(m, quality, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := ref.Run(ctrl, 1<<30)

	exec := ref.Executor()
	fmt.Printf("refined in %d rounds: inserted=%d committed=%d aborted=%d (conflict ratio %.2f)\n",
		res.Rounds, ref.Inserted, exec.TotalCommitted(), exec.TotalAborted(),
		exec.OverallConflictRatio())
	fmt.Printf("final: %d triangles, %d bad\n", m.NumTriangles(), len(m.BadTriangles(quality)))

	if err := m.CheckConsistency(); err != nil {
		fmt.Println("CONSISTENCY FAILED:", err)
		return
	}
	fmt.Println("mesh structurally consistent; total area =", m.TotalArea())

	// Allocation trajectory (coarse): show every 5th round.
	fmt.Println("\nround  m    conflict-ratio")
	for i := 0; i < len(res.M); i += 5 {
		fmt.Printf("%5d  %-4d %.2f\n", i, res.M[i], res.R[i])
	}

	// Render the refined mesh for inspection.
	f, err := os.Create("mesh.svg")
	if err != nil {
		fmt.Println("cannot write mesh.svg:", err)
		return
	}
	defer f.Close()
	if err := m.WriteSVG(f, quality, 800); err != nil {
		fmt.Println("SVG render failed:", err)
		return
	}
	fmt.Println("\nwrote mesh.svg (800×800)")
}
