// Phases example: the controller versus abruptly changing parallelism.
//
// The paper's §4.1 motivates fast adaptation with the Lonestar profiles:
// "Delaunay mesh refinement can go from no parallelism to one thousand
// possible parallel tasks in just 30 temporal steps". This example
// subjects the Algorithm 1 controller to a synthetic CC workload whose
// available parallelism jumps by an order of magnitude at phase
// boundaries, and prints how quickly m re-converges after each jump.
//
//	go run ./examples/phases
package main

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/rng"
)

func main() {
	r := rng.New(11)
	const rho = 0.20
	specs := []profile.PhaseSpec{
		{Rounds: 50, N: 2000, Degree: 64}, // μ ≈ 18: scarce parallelism
		{Rounds: 50, N: 2000, Degree: 4},  // μ ≈ 250: parallelism explodes
		{Rounds: 50, N: 2000, Degree: 16}, // μ ≈ 68: settles between
	}
	ps := profile.NewPhaseShifter(r, specs)
	ctrl := control.NewHybrid(control.DefaultHybridConfig(rho))

	fmt.Printf("phase-shifting workload, ρ = %.0f%%\n", rho*100)
	fmt.Println("round  phase  m     conflict-ratio")
	round := 0
	lastPhase := 0
	for !ps.Done() {
		g := ps.Graph()
		m := ctrl.M()
		mm := m
		if n := g.NumNodes(); mm > n {
			mm = n
		}
		ratio := 0.0
		if mm > 0 {
			order := g.SampleNodes(r, mm)
			committed, _ := graph.GreedyMIS(g, order)
			ratio = float64(mm-len(committed)) / float64(mm)
		}
		if ps.Phase() != lastPhase {
			fmt.Printf("----- phase %d: degree %.0f -----\n",
				ps.Phase(), specs[ps.Phase()].Degree)
			lastPhase = ps.Phase()
		}
		if round%5 == 0 {
			fmt.Printf("%5d  %-5d  %-4d  %.2f\n", round, ps.Phase(), m, ratio)
		}
		ctrl.Observe(ratio)
		ps.Tick()
		round++
	}
	fmt.Printf("\ncontroller updates: B=%d (coarse) A=%d (fine) hold=%d\n",
		ctrl.UpdatesB, ctrl.UpdatesA, ctrl.UpdatesNone)
}
