// Quickstart: allocate processors adaptively for an irregular workload
// modeled as a computations/conflicts graph.
//
// The CC graph has one node per pending task and one edge per potential
// conflict. Each round the runtime launches m tasks speculatively; the
// Algorithm 1 controller adjusts m so the measured conflict ratio tracks
// the target ρ.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A random irregular workload: 2000 tasks, each conflicting with 16
	// others on average (the paper's Fig. 2/3 parameters).
	g := core.RandomCCGraph(42, 2000, 16)

	// What does the theory promise before running anything?
	est := core.Estimate{N: g.NumNodes(), D: g.AvgDegree()}
	fmt.Printf("tasks=%d avg-conflicts=%.1f\n", g.NumNodes(), g.AvgDegree())
	fmt.Printf("Turán guaranteed parallelism: >= %.0f tasks/round\n", est.TuranParallelism())
	fmt.Printf("safe initial allocation:      m0 = %d (conflict ratio <= 21.3%%)\n", est.SafeInitialM())

	// Drain the workload with the adaptive controller at ρ = 25%.
	sim := core.NewSimulation(g, 7)
	ctrl := core.NewController(0.25)
	traj := sim.RunAdaptive(ctrl, 100000)

	committed, aborted := 0, 0
	peakM := 0
	for i := range traj.M {
		committed += traj.Committed[i]
		aborted += int(float64(traj.M[i])*traj.R[i] + 0.5)
		if traj.M[i] > peakM {
			peakM = traj.M[i]
		}
	}
	fmt.Printf("\ndrained in %d rounds: committed=%d aborted~%d peak-m=%d\n",
		traj.Len(), committed, aborted, peakM)
	fmt.Printf("controller updates: B=%d A=%d hold=%d\n",
		ctrl.UpdatesB, ctrl.UpdatesA, ctrl.UpdatesNone)
}
