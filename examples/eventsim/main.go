// Event simulation example: processor allocation for an ORDERED
// algorithm — the paper's §5 future work ("e.g., discrete event
// simulation", where events must commit chronologically).
//
// A tandem queueing network runs on the ordered speculative executor:
// events claim their station, commit in timestamp order, and executions
// that lose a same-station race (conflicts) or run ahead of newly
// spawned earlier events (premature, the Time-Warp hazard) are wasted
// work the controller reacts to. The final state is verified to be
// bit-identical to a sequential event-loop oracle.
//
//	go run ./examples/eventsim
package main

import (
	"fmt"
	"math"

	"repro/internal/apps/des"
	"repro/internal/control"
)

func main() {
	// 8-station tandem, 500 jobs arriving quickly: early on, many
	// stations are active at once (parallelism); the tail serializes.
	means := []float64{0.2, 0.15, 0.25, 0.2, 0.1, 0.3, 0.2, 0.15}
	net := des.NewTandem(99, means...)
	const jobs, interMean = 500, 0.05

	oracle := des.RunSequential(net, jobs, interMean)
	makespan, served := oracle.MakespanAndThroughput()
	fmt.Printf("oracle: served=%d makespan=%.2f processed=%d events\n",
		served, makespan, oracle.Processed)

	sim := des.NewSpeculativeSim(net, jobs, interMean)
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := sim.Run(ctrl, 1<<30)

	e := sim.Executor()
	fmt.Printf("speculative: rounds=%d committed=%d conflicts=%d premature=%d (wasted %.1f%%)\n",
		res.Rounds, e.TotalCommitted(), e.TotalConflicts(), e.TotalPremature(),
		100*e.OverallConflictRatio())

	if err := sim.State().CheckComplete(); err != nil {
		fmt.Println("INCOMPLETE:", err)
		return
	}
	m2, s2 := sim.State().MakespanAndThroughput()
	if s2 != served || math.Abs(m2-makespan) > 1e-12 {
		fmt.Println("MISMATCH with oracle!")
		return
	}
	fmt.Println("speculative trajectory is bit-identical to the oracle ✓")

	fmt.Println("\nround  m    wasted-ratio")
	step := len(res.M)/12 + 1
	for i := 0; i < len(res.M); i += step {
		fmt.Printf("%5d  %-4d %.2f\n", i, res.M[i], res.R[i])
	}
}
