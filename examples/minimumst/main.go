// Minimum spanning forest example: Boruvka's algorithm with speculative
// component merges under adaptive processor allocation, verified against
// the Kruskal oracle.
//
//	go run ./examples/minimumst
package main

import (
	"fmt"

	"repro/internal/apps/boruvka"
	"repro/internal/control"
	"repro/internal/rng"
)

func main() {
	r := rng.New(7)
	const n, extra = 2000, 6000
	g := boruvka.NewRandomConnected(r, n, extra)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, len(g.Edges))

	// Sequential Boruvka for reference.
	seq := boruvka.Sequential(g)
	fmt.Printf("sequential: %d rounds, weight %.3f\n", seq.Rounds, seq.Weight)

	// Speculative Boruvka with the Algorithm 1 controller.
	s := boruvka.NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := s.Run(ctrl, 1<<30)
	msf := s.Result()

	exec := s.Executor()
	fmt.Printf("speculative: %d rounds, weight %.3f, conflict ratio %.2f\n",
		res.Rounds, msf.Weight, exec.OverallConflictRatio())

	if err := boruvka.Verify(g, msf); err != nil {
		fmt.Println("VERIFY FAILED:", err)
		return
	}
	fmt.Println("speculative MSF matches the Kruskal oracle ✓")

	// Early rounds have huge components-count, so lots of parallelism;
	// show how the controller ramps.
	fmt.Println("\nround  m    conflict-ratio")
	step := len(res.M)/12 + 1
	for i := 0; i < len(res.M); i += step {
		fmt.Printf("%5d  %-4d %.2f\n", i, res.M[i], res.R[i])
	}
}
