// Command satsolve runs the complete survey-propagation pipeline on a
// random 3-SAT instance: SP message passing, bias-guided decimation with
// unit propagation, and a WalkSAT finisher for the paramagnetic
// residual — the full workload behind the paper's survey-propagation
// citation, usable as a standalone stochastic SAT solver.
//
// Usage:
//
//	satsolve -n 2000 -alpha 3.8 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/sp"
	"repro/internal/rng"
)

func main() {
	n := flag.Int("n", 1000, "number of variables")
	alpha := flag.Float64("alpha", 3.5, "clause-to-variable ratio (SAT phase < ~4.27)")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	eps := flag.Float64("eps", 1e-3, "SP convergence threshold")
	flag.Parse()

	r := rng.New(*seed)
	mClauses := int(float64(*n) * *alpha)
	f := sp.NewRandom3SAT(r, *n, mClauses)
	fmt.Printf("instance: %d variables, %d clauses (α = %.2f)\n", *n, mClauses, *alpha)

	start := time.Now()
	assignment, err := sp.Solve(f, r, sp.SolveOptions{Eps: *eps})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "UNSOLVED after %v: %v\n", elapsed, err)
		os.Exit(1)
	}
	if err := f.Satisfied(assignment); err != nil {
		fmt.Fprintf(os.Stderr, "INTERNAL ERROR: produced assignment invalid: %v\n", err)
		os.Exit(1)
	}
	trues := 0
	for _, v := range assignment {
		if v == 1 {
			trues++
		}
	}
	fmt.Printf("SATISFIABLE in %v (%d/%d variables true)\n", elapsed, trues, *n)
}
