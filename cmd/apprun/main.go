// Command apprun executes the four amorphous data-parallel applications
// on the speculative runtime under a chosen processor-allocation
// controller, reporting work, conflicts, and allocation trajectories —
// the end-to-end integration the paper's §5 anticipates.
//
// Usage:
//
//	apprun -app mesh    -ctrl hybrid -rho 0.25
//	apprun -app boruvka -ctrl fixed -m 64
//	apprun -app sp      -ctrl recurrence-a
//	apprun -app cluster -ctrl bisection
//	apprun -app des     -ctrl hybrid       # ordered (§5 future work)
//	apprun -app all     -ctrl hybrid
//
// -parallel sets the executor's persistent worker-pool size (default
// NumCPU); -parallel 0 launches one goroutine per task, the paper's
// model-faithful one-processor-per-task simulation.
//
// -async drops the round barrier: workers continuously pull tasks
// through a resizable in-flight semaphore and the controller observes a
// sliding commit window instead of rounds ("cc" and "spin" only;
// -commit-window fixes the window size, 0 tracks the controller's m).
//
// Workloads and controllers are instantiated through the shared
// internal/workload registry — the same constructors cmd/controlsim and
// the specd service use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/control"
	"repro/internal/speculation"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "all", "mesh | boruvka | sp | cluster | des | maxflow | all")
	ctrlName := flag.String("ctrl", "hybrid", "hybrid | model-based | recurrence-a | recurrence-b | bisection | aimd | fixed")
	rho := flag.Float64("rho", 0.25, "target conflict ratio")
	fixedM := flag.Int("m", 32, "processor count for -ctrl fixed")
	size := flag.Int("size", 1000, "workload size parameter")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	par := flag.Int("parallel", runtime.NumCPU(),
		"worker-pool size (0 = one goroutine per task, model-faithful)")
	maxRounds := flag.Int("max-rounds", 1<<30, "abandon a run after this many rounds")
	retries := flag.Int("task-retries", 0,
		"retry budget for failed tasks (0 = default, negative = no retries)")
	async := flag.Bool("async", false,
		"run barrier-free with sliding-window control (workloads with async support only)")
	window := flag.Int("commit-window", 0,
		"fixed async commit-window size (0 = track the controller's m)")
	flag.Parse()

	newCtrl := func() control.Controller {
		if !workload.HasController(*ctrlName) {
			fmt.Fprintf(os.Stderr, "unknown controller %q\n", *ctrlName)
			os.Exit(2)
		}
		c, err := workload.NewController(*ctrlName,
			workload.ControllerParams{Rho: *rho, FixedM: *fixedM})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return c
	}

	apps := []string{*app}
	if *app == "all" {
		apps = []string{"mesh", "boruvka", "sp", "cluster", "des", "maxflow"}
	}
	for _, a := range apps {
		if *async && !workload.SupportsAsync(a) {
			fmt.Fprintf(os.Stderr, "app %q does not support -async (only: cc, spin)\n", a)
			os.Exit(2)
		}
		c := newCtrl()
		run, err := workload.New(a, workload.Params{
			Size: *size, Seed: *seed, Parallel: *par, TaskRetries: *retries})
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", a)
			os.Exit(2)
		}
		var res *speculation.AdaptiveResult
		if *async {
			res, err = workload.DrainAsync(context.Background(), run.Stepper, c,
				speculation.AsyncOptions{Window: *window, MaxSamples: *maxRounds})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else {
			res = workload.Drain(context.Background(), run.Stepper, c, *maxRounds)
		}
		if pending := run.Stepper.Pending(); pending > 0 {
			// The cap cut the drain short; the oracle would report a
			// partial result as a failure, so say what happened instead.
			run.ReportIncomplete(os.Stdout, res, pending)
		} else {
			run.Report(os.Stdout, res)
		}
		run.Stepper.Close()
	}
}
