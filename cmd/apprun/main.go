// Command apprun executes the four amorphous data-parallel applications
// on the speculative runtime under a chosen processor-allocation
// controller, reporting work, conflicts, and allocation trajectories —
// the end-to-end integration the paper's §5 anticipates.
//
// Usage:
//
//	apprun -app mesh    -ctrl hybrid -rho 0.25
//	apprun -app boruvka -ctrl fixed -m 64
//	apprun -app sp      -ctrl recurrence-a
//	apprun -app cluster -ctrl bisection
//	apprun -app des     -ctrl hybrid       # ordered (§5 future work)
//	apprun -app all     -ctrl hybrid
//
// -parallel sets the executor's persistent worker-pool size (default
// NumCPU); -parallel 0 launches one goroutine per task, the paper's
// model-faithful one-processor-per-task simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/apps/boruvka"
	"repro/internal/apps/cluster"
	"repro/internal/apps/des"
	"repro/internal/apps/maxflow"
	"repro/internal/apps/mesh"
	"repro/internal/apps/sp"
	"repro/internal/control"
	"repro/internal/rng"
	"repro/internal/speculation"
)

func main() {
	app := flag.String("app", "all", "mesh | boruvka | sp | cluster | des | maxflow | all")
	ctrlName := flag.String("ctrl", "hybrid", "hybrid | model-based | recurrence-a | recurrence-b | bisection | aimd | fixed")
	rho := flag.Float64("rho", 0.25, "target conflict ratio")
	fixedM := flag.Int("m", 32, "processor count for -ctrl fixed")
	size := flag.Int("size", 1000, "workload size parameter")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	par := flag.Int("parallel", runtime.NumCPU(),
		"worker-pool size (0 = one goroutine per task, model-faithful)")
	flag.Parse()

	newCtrl := func() control.Controller {
		switch *ctrlName {
		case "hybrid":
			return control.NewHybrid(control.DefaultHybridConfig(*rho))
		case "model-based":
			return control.NewModelBased(*rho, 2)
		case "recurrence-a":
			return control.NewRecurrenceA(*rho, 2)
		case "recurrence-b":
			return control.NewRecurrenceB(*rho, 2)
		case "bisection":
			return control.NewBisection(*rho, 2)
		case "aimd":
			return control.NewAIMD(*rho, 2)
		case "fixed":
			return control.Fixed{Procs: *fixedM}
		default:
			fmt.Fprintf(os.Stderr, "unknown controller %q\n", *ctrlName)
			os.Exit(2)
			return nil
		}
	}

	apps := []string{*app}
	if *app == "all" {
		apps = []string{"mesh", "boruvka", "sp", "cluster", "des", "maxflow"}
	}
	for _, a := range apps {
		switch a {
		case "mesh":
			runMesh(newCtrl(), *size, *seed, *par)
		case "boruvka":
			runBoruvka(newCtrl(), *size, *seed, *par)
		case "sp":
			runSP(newCtrl(), *size, *seed, *par)
		case "cluster":
			runCluster(newCtrl(), *size, *seed, *par)
		case "des":
			runDES(newCtrl(), *size, *seed, *par)
		case "maxflow":
			runMaxflow(newCtrl(), *size, *seed, *par)
		default:
			fmt.Fprintf(os.Stderr, "unknown app %q\n", a)
			os.Exit(2)
		}
	}
}

func report(name string, e *speculation.Executor, res *speculation.AdaptiveResult) {
	fmt.Printf("%-8s rounds=%-6d committed=%-7d aborted=%-6d conflict-ratio=%.3f mean-m=%.1f\n",
		name, res.Rounds, e.TotalCommitted(), e.TotalAborted(),
		e.OverallConflictRatio(), meanM(res))
}

func meanM(res *speculation.AdaptiveResult) float64 {
	if len(res.M) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range res.M {
		s += float64(m)
	}
	return s / float64(len(res.M))
}

func runMesh(c control.Controller, size int, seed uint64, par int) {
	r := rng.New(seed)
	m := mesh.NewSquare(0, 1)
	for i := 0; i < size/10; i++ {
		m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
	}
	q := mesh.Quality{MaxArea: 1.0 / float64(size)}
	ref := mesh.NewSpeculativeRefiner(m, q, func(n int) int { return r.Intn(n) })
	ref.Executor().MaxParallel = par
	res := ref.Run(c, 1<<30)
	report("mesh", ref.Executor(), res)
	fmt.Printf("         inserted=%d triangles=%d bad-remaining=%d\n",
		ref.Inserted, m.NumTriangles(), len(m.BadTriangles(q)))
}

func runBoruvka(c control.Controller, size int, seed uint64, par int) {
	r := rng.New(seed)
	g := boruvka.NewRandomConnected(r, size, size*3)
	s := boruvka.NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = par
	res := s.Run(c, 1<<30)
	report("boruvka", s.Executor(), res)
	msf := s.Result()
	if err := boruvka.Verify(g, msf); err != nil {
		fmt.Printf("         VERIFY FAILED: %v\n", err)
		return
	}
	fmt.Printf("         msf-edges=%d weight=%.3f (verified against Kruskal)\n",
		len(msf.Edges), msf.Weight)
}

func runSP(c control.Controller, size int, seed uint64, par int) {
	r := rng.New(seed)
	f := sp.NewRandom3SAT(r, size, int(float64(size)*2.5))
	st := sp.NewState(f, r.Split())
	s := sp.NewSpeculativeSP(st, 1e-4, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = par
	res := s.Run(c, 1<<30)
	report("sp", s.Executor(), res)
	fmt.Printf("         clause-updates=%d final-sweep-residual=%.2g\n",
		s.Updates, st.Sweep())
}

func runDES(c control.Controller, size int, seed uint64, par int) {
	// Ordered workload (§5 future work): events commit chronologically.
	means := []float64{0.2, 0.15, 0.25, 0.2, 0.1, 0.3}
	net := des.NewTandem(seed, means...)
	sim := des.NewSpeculativeSim(net, size/2, 0.05)
	sim.Executor().MaxParallel = par
	res := sim.Run(c, 1<<30)
	e := sim.Executor()
	fmt.Printf("%-8s rounds=%-6d committed=%-7d conflicts=%-5d premature=%-6d wasted=%.3f\n",
		"des", res.Rounds, e.TotalCommitted(), e.TotalConflicts(), e.TotalPremature(),
		e.OverallConflictRatio())
	if err := sim.State().CheckComplete(); err != nil {
		fmt.Printf("         VERIFY FAILED: %v\n", err)
		return
	}
	oracle := des.RunSequential(net, size/2, 0.05)
	m1, s1 := sim.State().MakespanAndThroughput()
	m2, s2 := oracle.MakespanAndThroughput()
	if s1 != s2 || m1 != m2 {
		fmt.Printf("         VERIFY FAILED: (%.4f,%d) vs oracle (%.4f,%d)\n", m1, s1, m2, s2)
		return
	}
	fmt.Printf("         served=%d makespan=%.2f (bit-identical to sequential oracle)\n", s1, m1)
}

func runMaxflow(c control.Controller, size int, seed uint64, par int) {
	r := rng.New(seed)
	net := maxflow.RandomNetwork(r, size/2, size*2, 50)
	oracle := maxflow.EdmondsKarp(net.Clone(), 0, net.N-1)
	s := maxflow.NewSpeculativePR(net, 0, net.N-1, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = par
	res := s.Run(c, 1<<30)
	report("maxflow", s.Executor(), res)
	if got := s.FlowValue(); got != oracle {
		fmt.Printf("         VERIFY FAILED: flow %d vs oracle %d\n", got, oracle)
		return
	}
	fmt.Printf("         max-flow=%d (verified against Edmonds-Karp)\n", s.FlowValue())
}

func runCluster(c control.Controller, size int, seed uint64, par int) {
	r := rng.New(seed)
	cl := cluster.New(cluster.RandomPoints(r, size))
	s := cluster.NewSpeculative(cl, 1, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = par
	res := s.Run(c, 1<<30)
	report("cluster", s.Executor(), res)
	if err := cl.CheckDendrogram(size); err != nil {
		fmt.Printf("         VERIFY FAILED: %v\n", err)
		return
	}
	fmt.Printf("         merges=%d clusters-left=%d (dendrogram verified)\n",
		len(cl.Merges), cl.NumClusters())
}
