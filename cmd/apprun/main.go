// Command apprun executes the four amorphous data-parallel applications
// on the speculative runtime under a chosen processor-allocation
// controller, reporting work, conflicts, and allocation trajectories —
// the end-to-end integration the paper's §5 anticipates.
//
// Usage:
//
//	apprun -app mesh    -ctrl hybrid -rho 0.25
//	apprun -app boruvka -ctrl fixed -m 64
//	apprun -app sp      -ctrl recurrence-a
//	apprun -app cluster -ctrl bisection
//	apprun -app des     -ctrl hybrid       # ordered (§5 future work)
//	apprun -app all     -ctrl hybrid
//
// -parallel sets the executor's persistent worker-pool size (default
// NumCPU); -parallel 0 launches one goroutine per task, the paper's
// model-faithful one-processor-per-task simulation.
//
// -async drops the round barrier: workers continuously pull tasks
// through a resizable in-flight semaphore and the controller observes a
// sliding commit window instead of rounds (async-capable workloads
// only; -commit-window fixes the window size, 0 tracks the
// controller's m).
//
// -colored runs hybrid speculative→colored: optimistic rounds learn
// the conflict graph, a proper coloring of it partitions the tasks
// into conflict-free classes, and whole classes run lock-free until a
// staleness trip falls back to speculation (colored-capable workloads
// only). The report gains a phase line: learning vs colored rounds,
// colorings, fallbacks, and the colored-phase conflict ratio.
//
// Workloads and controllers are instantiated through the shared
// internal/workload registry — the same constructors cmd/controlsim and
// the specd service use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/control"
	"repro/internal/speculation"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "all", "mesh | boruvka | sp | cluster | des | maxflow | stable | all")
	ctrlName := flag.String("ctrl", "hybrid", "hybrid | model-based | recurrence-a | recurrence-b | bisection | aimd | fixed")
	rho := flag.Float64("rho", 0.25, "target conflict ratio")
	fixedM := flag.Int("m", 32, "processor count for -ctrl fixed")
	size := flag.Int("size", 1000, "workload size parameter")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	par := flag.Int("parallel", runtime.NumCPU(),
		"worker-pool size (0 = one goroutine per task, model-faithful)")
	maxRounds := flag.Int("max-rounds", 1<<30, "abandon a run after this many rounds")
	retries := flag.Int("task-retries", 0,
		"retry budget for failed tasks (0 = default, negative = no retries)")
	async := flag.Bool("async", false,
		"run barrier-free with sliding-window control (workloads with async support only)")
	colored := flag.Bool("colored", false,
		"run hybrid speculative→colored (workloads with colored support only)")
	window := flag.Int("commit-window", 0,
		"fixed async commit-window size (0 = track the controller's m)")
	flag.Parse()

	if *async && *colored {
		fmt.Fprintln(os.Stderr, "-async and -colored are mutually exclusive")
		os.Exit(2)
	}

	newCtrl := func() control.Controller {
		if !workload.HasController(*ctrlName) {
			fmt.Fprintf(os.Stderr, "unknown controller %q\n", *ctrlName)
			os.Exit(2)
		}
		c, err := workload.NewController(*ctrlName,
			workload.ControllerParams{Rho: *rho, FixedM: *fixedM})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return c
	}

	apps := []string{*app}
	if *app == "all" {
		apps = []string{"mesh", "boruvka", "sp", "cluster", "des", "maxflow"}
	}
	for _, a := range apps {
		if *async && !workload.SupportsAsync(a) {
			fmt.Fprintf(os.Stderr, "app %q does not support -async (only: %v)\n",
				a, workload.CapableNames(workload.CapAsync))
			os.Exit(2)
		}
		if *colored && !workload.SupportsColored(a) {
			fmt.Fprintf(os.Stderr, "app %q does not support -colored (only: %v)\n",
				a, workload.CapableNames(workload.CapColored))
			os.Exit(2)
		}
		c := newCtrl()
		run, err := workload.New(a, workload.Params{
			Size: *size, Seed: *seed, Parallel: *par, TaskRetries: *retries})
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", a)
			os.Exit(2)
		}
		var res *speculation.AdaptiveResult
		var cres *speculation.ColoredResult
		switch {
		case *async:
			res, err = workload.DrainAsync(context.Background(), run.Stepper, c,
				speculation.AsyncOptions{Window: *window, MaxSamples: *maxRounds})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		case *colored:
			res, cres, err = workload.DrainColored(context.Background(), run.Stepper, c,
				speculation.ColoredOptions{MaxRounds: *maxRounds})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		default:
			res = workload.Drain(context.Background(), run.Stepper, c, *maxRounds)
		}
		if pending := run.Stepper.Pending(); pending > 0 {
			// The cap cut the drain short; the oracle would report a
			// partial result as a failure, so say what happened instead.
			run.ReportIncomplete(os.Stdout, res, pending)
		} else {
			run.Report(os.Stdout, res)
		}
		if cres != nil {
			fmt.Printf("         colored: learn-rounds=%d colored-rounds=%d colorings=%d fallbacks=%d colors=%d colored-commits=%d colored-r=%.3f\n",
				cres.SpecRounds, cres.ColoredRounds, cres.Colorings, cres.Fallbacks,
				cres.Colors, cres.ColoredCommits, cres.ColoredConflictRatio())
		}
		run.Stepper.Close()
	}
}
