// Command benchfmt condenses `go test -bench` output into the JSON
// benchmark records the repo tracks in version control (BENCH_sim.json):
// it reads benchmark result lines from stdin, groups repeated -count runs
// by benchmark name, and emits the per-benchmark median ns/op (medians
// resist scheduler noise better than means) plus allocation stats.
//
// Usage:
//
//	go test ./internal/... -run NONE -bench . -count 5 | benchfmt > BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// resultLine matches e.g.
//
//	BenchmarkCSRMIS          53604    21860 ns/op    0 B/op    0 allocs/op
//	BenchmarkConflictRatioMCParallel/w8-8    970    1262148 ns/op
//
// B/op and allocs/op are matched separately because custom metrics
// (b.ReportMetric, e.g. "tasks/sec") land between ns/op and the
// allocation columns.
var (
	resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	bytesCol   = regexp.MustCompile(`\s([\d.]+) B/op`)
	allocsCol  = regexp.MustCompile(`\s(\d+) allocs/op`)
)

type record struct {
	NsPerOp     float64 `json:"ns_per_op"`     // median across runs
	BytesPerOp  float64 `json:"bytes_per_op"`  // median across runs
	AllocsPerOp float64 `json:"allocs_per_op"` // median across runs
	Runs        int     `json:"runs"`
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

func main() {
	ns := map[string][]float64{}
	bytes := map[string][]float64{}
	allocs := map[string][]float64{}
	var names []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, seen := ns[name]; !seen {
			names = append(names, name)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ns[name] = append(ns[name], v)
		if bm := bytesCol.FindStringSubmatch(line); bm != nil {
			if b, err := strconv.ParseFloat(bm[1], 64); err == nil {
				bytes[name] = append(bytes[name], b)
			}
		}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			if a, err := strconv.ParseFloat(am[1], 64); err == nil {
				allocs[name] = append(allocs[name], a)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark result lines on stdin")
		os.Exit(1)
	}

	out := make(map[string]record, len(names))
	for _, name := range names {
		out[name] = record{
			NsPerOp:     median(ns[name]),
			BytesPerOp:  median(bytes[name]),
			AllocsPerOp: median(allocs[name]),
			Runs:        len(ns[name]),
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}
