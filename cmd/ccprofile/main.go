// Command ccprofile charts available parallelism over time in the style
// of the Lonestar suite ([15] in the paper): at each step the expected
// maximal-independent-set size of the current CC graph is the number of
// tasks a clairvoyant scheduler could run at once. The paper's §4.1
// motivates the adaptive controller with exactly these profiles.
//
// Usage:
//
//	ccprofile -workload random -n 2000 -d 16
//	ccprofile -workload mesh -size 3000       # Delaunay refinement
//	ccprofile -workload boruvka               # MSF component phases
//	ccprofile -workload cluster               # mutual-NN merge matching
//	ccprofile -workload des                   # ordered (chronological) DES
//	ccprofile -workload phases                # synthetic abrupt shifts
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/apps/boruvka"
	"repro/internal/apps/cluster"
	"repro/internal/apps/des"
	"repro/internal/apps/mesh"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "random", "random | mesh | boruvka | cluster | des | phases")
	n := flag.Int("n", 2000, "CC graph size (random workload)")
	d := flag.Float64("d", 16, "average degree (random workload)")
	size := flag.Int("size", 2000, "mesh workload size (1/MaxArea)")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	reps := flag.Int("reps", 5, "MIS estimation repetitions per step")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"MIS estimation workers (reps shard across them)")
	plot := flag.Bool("plot", false, "render an ASCII plot")
	flag.Parse()

	var pts []profile.Point
	r := rng.New(*seed)
	switch *workload {
	case "random":
		g := graph.RandomWithAvgDegree(r, *n, *d)
		pts = profile.ProfileParallel(g, r, nil, *reps, 100000, *workers)
	case "mesh":
		pts = meshProfile(r, *size)
	case "boruvka":
		g := boruvka.NewRandomConnected(r, *size, *size*3)
		for _, p := range boruvka.ParallelismProfile(g, r, *reps*4) {
			pts = append(pts, profile.Point{
				Step:        p.Phase,
				Live:        p.Components,
				Parallelism: p.Parallelism,
			})
		}
	case "cluster":
		c := cluster.New(cluster.RandomPoints(r, *size))
		for _, p := range c.ParallelismProfile(1) {
			pts = append(pts, profile.Point{
				Step:        p.Step,
				Live:        p.Clusters,
				Parallelism: float64(p.MutualPairs),
			})
		}
	case "des":
		net := des.NewTandem(*seed, 0.2, 0.15, 0.25, 0.2, 0.1, 0.3)
		for _, p := range des.ParallelismProfile(net, *size/4, 0.05, 100000) {
			pts = append(pts, profile.Point{
				Step:        p.Step,
				Live:        p.Pending,
				Parallelism: float64(p.Parallelism),
			})
		}
	case "phases":
		pts = phasesProfile(r, *reps, *workers)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	tbl := trace.NewTable("parallelism-profile", "step", "live", "parallelism", "avg_degree")
	for _, p := range pts {
		tbl.AddRow(float64(p.Step), float64(p.Live), p.Parallelism, p.AvgDegree)
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *plot {
		pl := trace.NewASCIIPlot(72, 16)
		pl.XLabel = "step"
		pl.YLabel = "available parallelism"
		pl.SetX(tbl.Column(0))
		pl.AddSeries("parallelism", tbl.Column(2))
		fmt.Println()
		if err := pl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// meshProfile measures the Delaunay-refinement parallelism profile: the
// number of *independent* bad-triangle cavities per refinement step —
// the paper's "no parallelism to one thousand parallel tasks in just 30
// temporal steps" workload. Each step refines one maximal independent
// batch of bad triangles.
func meshProfile(r *rng.Rand, size int) []profile.Point {
	m := mesh.NewSquare(0, 1)
	for i := 0; i < 50; i++ {
		m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
	}
	q := mesh.Quality{MaxArea: 1.0 / float64(size)}
	var pts []profile.Point
	for step := 0; step < 100000; step++ {
		bad := m.BadTriangles(q)
		if len(bad) == 0 {
			break
		}
		// Independent batch: greedily take bad triangles with disjoint
		// cavities (clairvoyant parallelism estimate).
		taken := map[int]bool{}
		batch := 0
		for _, id := range bad {
			t := m.Triangle(id)
			if t == nil {
				continue
			}
			p, ok := m.RefinePoint(t)
			if !ok {
				continue
			}
			loc := m.Locate(p)
			if loc < 0 {
				continue
			}
			cav := m.Cavity(loc, p)
			overlap := false
			for _, cid := range cav {
				if taken[cid] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for _, cid := range cav {
				taken[cid] = true
			}
			batch++
		}
		pts = append(pts, profile.Point{Step: step, Live: len(bad), Parallelism: float64(batch)})
		// Refine one batch sequentially (any independent subset is a
		// valid parallel step).
		count := 0
		for _, id := range bad {
			if t := m.Triangle(id); t != nil && q.IsBad(m, t) {
				if p, ok := m.RefinePoint(t); ok {
					if m.Locate(p) >= 0 {
						m.Insert(p)
						count++
					}
				}
			}
			if count >= batch {
				break
			}
		}
	}
	return pts
}

func phasesProfile(r *rng.Rand, reps, workers int) []profile.Point {
	specs := []profile.PhaseSpec{
		{Rounds: 30, N: 1000, Degree: 128},
		{Rounds: 30, N: 1000, Degree: 2},
		{Rounds: 30, N: 1000, Degree: 32},
	}
	ps := profile.NewPhaseShifter(r, specs)
	var pts []profile.Point
	step := 0
	for !ps.Done() {
		g := ps.Graph()
		pts = append(pts, profile.Point{
			Step:        step,
			Live:        g.NumNodes(),
			Parallelism: graph.ExpectedMISMonteCarloParallel(g, r, reps, workers),
			AvgDegree:   g.AvgDegree(),
		})
		ps.Tick()
		step++
	}
	return pts
}
