// Command specload is a load generator for specd: it submits N jobs
// concurrently, polls each to completion, and reports a summary with
// per-target request-latency histograms. Used by the e2e tests
// (through its client package) and for manual soak runs against a live
// daemon or cluster:
//
//	specload -addr http://127.0.0.1:8080 -jobs 16 -workload cc -size 500
//	specload -addr http://127.0.0.1:8080,http://127.0.0.1:8081 -jobs 32
//
// With multiple comma-separated targets, specload drives them through
// the cluster-failover client: requests stick to the first reachable
// target and rotate on transport errors, so a soak run rides through a
// router or node restart. Jobs vary the seed (base seed + index) so a
// run exercises distinct executions. Exit status is nonzero if any
// accepted job failed, or if rejected jobs were not expected
// (-expect-reject=false).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
)

// latencyRecorder accumulates per-request latencies and an error-class
// breakdown for one target, fed by the client's Observe hook.
type latencyRecorder struct {
	mu      sync.Mutex
	byClass map[string][]time.Duration
	byErr   map[string]int // requests by error class ("ok" omitted)
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{
		byClass: make(map[string][]time.Duration),
		byErr:   make(map[string]int),
	}
}

func (lr *latencyRecorder) observe(method, path string, status int, err error, elapsed time.Duration) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.byClass[opClass(method, path)] = append(lr.byClass[opClass(method, path)], elapsed)
	if class := errClass(status, err); class != "ok" {
		lr.byErr[class]++
	}
}

// errClass buckets one request's outcome: a slow target (timeout) reads
// differently from a refused connection (transport), backpressure
// (429), or a failing server (5xx).
func errClass(status int, err error) string {
	switch {
	case err != nil:
		var ne net.Error
		if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
			return "timeout"
		}
		return "transport"
	case status == http.StatusTooManyRequests:
		return "429"
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	default:
		return "ok"
	}
}

// opClass buckets requests into a few stable operation names so the
// histogram summary stays readable.
func opClass(method, path string) string {
	switch {
	case method == "POST" && strings.HasSuffix(path, "/v1/jobs"):
		return "submit"
	case method == "GET" && strings.HasSuffix(path, "/v1/jobs"):
		return "list"
	case method == "GET" && strings.Contains(path, "/v1/jobs/"):
		return "poll"
	case method == "DELETE" && strings.Contains(path, "/v1/jobs/"):
		return "cancel"
	case strings.HasSuffix(path, "/healthz"):
		return "health"
	case strings.HasSuffix(path, "/metrics"):
		return "metrics"
	default:
		return method + " " + path
	}
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// latencies using nearest-rank; zero on an empty slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// summarize prints one histogram line per operation class.
func (lr *latencyRecorder) summarize(target string) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	classes := make([]string, 0, len(lr.byClass))
	for c := range lr.byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		ds := lr.byClass[c]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Printf("specload: latency %-28s %-8s n=%-6d p50=%-10s p90=%-10s p99=%s\n",
			target, c, len(ds), percentile(ds, 50), percentile(ds, 90), percentile(ds, 99))
	}
	if len(lr.byErr) > 0 {
		classes := make([]string, 0, len(lr.byErr))
		for c := range lr.byErr {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, len(classes))
		for i, c := range classes {
			parts[i] = fmt.Sprintf("%s=%d", c, lr.byErr[c])
		}
		fmt.Printf("specload: errors  %-28s %s\n", target, strings.Join(parts, " "))
	}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "specd base URL(s), comma-separated for failover")
	jobs := flag.Int("jobs", 8, "number of jobs to submit concurrently")
	wl := flag.String("workload", "cc", "workload name (mesh | boruvka | sp | cluster | des | maxflow | cc)")
	ctrl := flag.String("ctrl", "hybrid", "controller name")
	rho := flag.Float64("rho", 0.25, "target conflict ratio")
	fixedM := flag.Int("m", 32, "processor count for -ctrl fixed")
	size := flag.Int("size", 500, "workload size parameter")
	seed := flag.Uint64("seed", 1, "base PRNG seed (job i uses seed+i)")
	parallel := flag.Int("parallel", 0, "per-job executor pool size (0 = server default, -1 = model-faithful)")
	poll := flag.Duration("poll", 100*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	expectReject := flag.Bool("expect-reject", true, "treat 429 rejections as expected backpressure")
	retries := flag.Int("retries", 0, "resubmit attempts after a 429, honoring Retry-After")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base backoff between resubmits (doubles, jittered)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "seed for the client-side chaos transport (with -chaos-plan)")
	chaosPlan := flag.String("chaos-plan", "", `client-side fault plan, e.g. "specload>*:lat=10ms..50ms,err=0.05" (src is "specload")`)
	tenant := flag.String("tenant", "", "tenant to submit every job under (empty = server default)")
	priority := flag.Int("priority", 0, "job priority 1..9 (0 = tenant default)")
	mix := flag.String("mix", "", `weighted tenant mix, e.g. "gold:3,free:1" — job i cycles through the weighted slots (overrides -tenant)`)
	flag.Parse()

	// A "-mix a:3,b:1" expands into weighted slots [a a a b]; job i
	// submits under slots[i%len], so the submitted mix follows the
	// weights without randomness.
	var slots []string
	if *mix != "" {
		for _, part := range strings.Split(*mix, ",") {
			name, wstr, found := strings.Cut(strings.TrimSpace(part), ":")
			w := 1
			if found {
				if _, err := fmt.Sscanf(wstr, "%d", &w); err != nil || w < 1 {
					fmt.Fprintf(os.Stderr, "specload: bad -mix entry %q (want name:weight)\n", part)
					os.Exit(2)
				}
			}
			if name == "" {
				fmt.Fprintf(os.Stderr, "specload: bad -mix entry %q (empty tenant)\n", part)
				os.Exit(2)
			}
			for k := 0; k < w; k++ {
				slots = append(slots, name)
			}
		}
	}
	tenantFor := func(i int) string {
		if len(slots) > 0 {
			return slots[i%len(slots)]
		}
		return *tenant
	}

	var chaosLinks map[string]faultinject.LinkFault
	if *chaosPlan != "" {
		var err error
		if chaosLinks, err = faultinject.ParseChaosPlan(*chaosPlan); err != nil {
			fmt.Fprintf(os.Stderr, "specload: bad -chaos-plan: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	targets := strings.Split(*addr, ",")
	recorders := make(map[string]*latencyRecorder, len(targets))
	clients := make([]*client.Client, 0, len(targets))
	for _, t := range targets {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		c := client.New(t)
		if chaosLinks != nil {
			c.HTTPClient = &http.Client{
				Timeout: 10 * time.Second,
				Transport: &faultinject.ChaosTransport{
					Src:    "specload",
					Config: faultinject.ChaosConfig{Seed: *chaosSeed, Links: chaosLinks},
				},
			}
		}
		lr := newLatencyRecorder()
		recorders[c.BaseURL] = lr
		c.Observe = lr.observe
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		fmt.Fprintln(os.Stderr, "specload: -addr names no targets")
		os.Exit(2)
	}
	c := client.NewClusterFrom(clients...)

	h, err := c.Health(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specload: server not healthy: %v\n", err)
		os.Exit(1)
	}
	if h.Role != "" {
		fmt.Printf("specload: driving %s (role %s) with %d jobs\n", c.LastTarget(), h.Role, *jobs)
	}

	type outcome struct {
		id       string
		tenant   string
		rejected bool
		retries  int
		err      error
	}
	results := make([]outcome, *jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := tenantFor(i)
			st, stats, err := c.SubmitRetry(ctx, service.JobSpec{
				Workload:   *wl,
				Controller: *ctrl,
				Rho:        *rho,
				FixedM:     *fixedM,
				Size:       *size,
				Seed:       *seed + uint64(i),
				Parallel:   *parallel,
				Tenant:     tn,
				Priority:   *priority,
			}, client.Backoff{
				MaxRetries: *retries,
				Base:       *backoff,
				Seed:       *seed + uint64(i),
			})
			switch {
			case errors.Is(err, client.ErrBusy):
				results[i] = outcome{tenant: tn, rejected: true, retries: stats.Retries}
			case err != nil:
				results[i] = outcome{tenant: tn, err: err, retries: stats.Retries}
			default:
				results[i] = outcome{id: st.ID, tenant: tn, retries: stats.Retries}
			}
		}(i)
	}
	wg.Wait()

	accepted, rejected, retried, failed := 0, 0, 0, 0
	var totalCommits, totalAborts int64
	type tenantTally struct{ accepted, rejected, completed int }
	byTenant := make(map[string]*tenantTally)
	tally := func(tn string) *tenantTally {
		if tn == "" {
			tn = service.DefaultTenant
		}
		if t, ok := byTenant[tn]; ok {
			return t
		}
		t := &tenantTally{}
		byTenant[tn] = t
		return t
	}
	for _, r := range results {
		retried += r.retries
		switch {
		case r.err != nil:
			fmt.Fprintf(os.Stderr, "specload: submit failed: %v\n", r.err)
			failed++
			continue
		case r.rejected:
			rejected++
			tally(r.tenant).rejected++
			continue
		}
		accepted++
		tally(r.tenant).accepted++
		st, err := c.Wait(ctx, r.id, *poll)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specload: waiting for %s: %v\n", r.id, err)
			failed++
			continue
		}
		totalCommits += st.Committed
		totalAborts += st.Aborted
		line := fmt.Sprintf("%-5s %-9s rounds=%-6d committed=%-8d aborted=%-7d ratio=%.3f",
			st.ID, st.State, st.Rounds, st.Committed, st.Aborted, st.ConflictRatio)
		if st.Node != "" {
			line += " node=" + st.Node
		}
		if st.State == service.StateDone {
			fmt.Printf("%s %s\n", line, st.Result)
			tally(r.tenant).completed++
		} else {
			fmt.Printf("%s %s\n", line, st.Error)
			failed++
		}
	}

	fmt.Printf("specload: %d submitted, %d accepted, %d rejected (429), %d retried, %d failed in %.2fs; commits=%d aborts=%d\n",
		*jobs, accepted, rejected, retried, failed, time.Since(start).Seconds(), totalCommits, totalAborts)
	if len(byTenant) > 1 || *mix != "" {
		names := make([]string, 0, len(byTenant))
		for tn := range byTenant {
			names = append(names, tn)
		}
		sort.Strings(names)
		for _, tn := range names {
			t := byTenant[tn]
			fmt.Printf("specload: tenant %-12s accepted=%-5d completed=%-5d rejected=%d\n",
				tn, t.accepted, t.completed, t.rejected)
		}
	}
	for _, cl := range clients {
		recorders[cl.BaseURL].summarize(cl.BaseURL)
	}
	if failed > 0 || (rejected > 0 && !*expectReject) {
		os.Exit(1)
	}
}
