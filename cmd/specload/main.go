// Command specload is a load generator for specd: it submits N jobs
// concurrently, polls each to completion, and reports a summary. Used
// by the e2e tests (through its client package) and for manual soak
// runs against a live daemon:
//
//	specload -addr http://127.0.0.1:8080 -jobs 16 -workload cc -size 500
//
// Jobs vary the seed (base seed + index) so a soak run exercises
// distinct executions. Exit status is nonzero if any accepted job
// failed, or if rejected jobs were not expected (-expect-reject=false).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "specd base URL")
	jobs := flag.Int("jobs", 8, "number of jobs to submit concurrently")
	wl := flag.String("workload", "cc", "workload name (mesh | boruvka | sp | cluster | des | maxflow | cc)")
	ctrl := flag.String("ctrl", "hybrid", "controller name")
	rho := flag.Float64("rho", 0.25, "target conflict ratio")
	fixedM := flag.Int("m", 32, "processor count for -ctrl fixed")
	size := flag.Int("size", 500, "workload size parameter")
	seed := flag.Uint64("seed", 1, "base PRNG seed (job i uses seed+i)")
	parallel := flag.Int("parallel", 0, "per-job executor pool size (0 = server default, -1 = model-faithful)")
	poll := flag.Duration("poll", 100*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	expectReject := flag.Bool("expect-reject", true, "treat 429 rejections as expected backpressure")
	retries := flag.Int("retries", 0, "resubmit attempts after a 429, honoring Retry-After")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base backoff between resubmits (doubles, jittered)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr)

	if err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "specload: server not healthy: %v\n", err)
		os.Exit(1)
	}

	type outcome struct {
		id       string
		rejected bool
		retries  int
		err      error
	}
	results := make([]outcome, *jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, stats, err := c.SubmitRetry(ctx, service.JobSpec{
				Workload:   *wl,
				Controller: *ctrl,
				Rho:        *rho,
				FixedM:     *fixedM,
				Size:       *size,
				Seed:       *seed + uint64(i),
				Parallel:   *parallel,
			}, client.Backoff{
				MaxRetries: *retries,
				Base:       *backoff,
				Seed:       *seed + uint64(i),
			})
			switch {
			case errors.Is(err, client.ErrBusy):
				results[i] = outcome{rejected: true, retries: stats.Retries}
			case err != nil:
				results[i] = outcome{err: err, retries: stats.Retries}
			default:
				results[i] = outcome{id: st.ID, retries: stats.Retries}
			}
		}(i)
	}
	wg.Wait()

	accepted, rejected, retried, failed := 0, 0, 0, 0
	var totalCommits, totalAborts int64
	for _, r := range results {
		retried += r.retries
		switch {
		case r.err != nil:
			fmt.Fprintf(os.Stderr, "specload: submit failed: %v\n", r.err)
			failed++
			continue
		case r.rejected:
			rejected++
			continue
		}
		accepted++
		st, err := c.Wait(ctx, r.id, *poll)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specload: waiting for %s: %v\n", r.id, err)
			failed++
			continue
		}
		totalCommits += st.Committed
		totalAborts += st.Aborted
		line := fmt.Sprintf("%-5s %-9s rounds=%-6d committed=%-8d aborted=%-7d ratio=%.3f",
			st.ID, st.State, st.Rounds, st.Committed, st.Aborted, st.ConflictRatio)
		if st.State == service.StateDone {
			fmt.Printf("%s %s\n", line, st.Result)
		} else {
			fmt.Printf("%s %s\n", line, st.Error)
			failed++
		}
	}

	fmt.Printf("specload: %d submitted, %d accepted, %d rejected (429), %d retried, %d failed in %.2fs; commits=%d aborts=%d\n",
		*jobs, accepted, rejected, retried, failed, time.Since(start).Seconds(), totalCommits, totalAborts)
	if failed > 0 || (rejected > 0 && !*expectReject) {
		os.Exit(1)
	}
}
