package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := make([]time.Duration, 0, 100)
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, ms(i))
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(50)},
		{90, ms(90)},
		{99, ms(99)},
		{100, ms(100)},
		{1, ms(1)},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(1..100ms, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile([]time.Duration{ms(7)}, 99); got != ms(7) {
		t.Errorf("percentile(single, 99) = %v, want 7ms", got)
	}
}

func TestOpClass(t *testing.T) {
	cases := []struct{ method, path, want string }{
		{"POST", "/v1/jobs", "submit"},
		{"GET", "/v1/jobs", "list"},
		{"GET", "/v1/jobs/c12", "poll"},
		{"GET", "/healthz", "health"},
		{"GET", "/metrics", "metrics"},
		{"DELETE", "/v1/jobs/c12", "cancel"},
	}
	for _, c := range cases {
		if got := opClass(c.method, c.path); got != c.want {
			t.Errorf("opClass(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}
