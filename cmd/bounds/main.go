// Command bounds prints the paper's §3 closed-form theory as tables:
// the exact worst-case conflict-ratio bound of Thm. 3, its Cor. 2
// approximation, the Cor. 3 α-parametrized envelope, the Turán
// parallelism guarantee, and the Example 1 pathology.
//
// Usage:
//
//	bounds -n 2040 -d 16            # Thm. 3 / Cor. 2 table over m
//	bounds -alpha                   # Cor. 3 table over α
//	bounds -example1                # Example 1 table over n
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analytic"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 2040, "CC graph size")
	d := flag.Int("d", 16, "average degree")
	points := flag.Int("points", 24, "rows in the m-sweep table")
	alphaTable := flag.Bool("alpha", false, "print the Cor. 3 α table instead")
	example1 := flag.Bool("example1", false, "print the Example 1 table instead")
	flag.Parse()

	switch {
	case *alphaTable:
		printAlpha()
	case *example1:
		printExample1()
	default:
		printBounds(*n, *d, *points)
	}
}

func printBounds(n, d, points int) {
	fmt.Printf("Worst-case conflict ratio bounds, n=%d d=%d (Thm. 3 / Cor. 2)\n", n, d)
	fmt.Printf("Turán guaranteed parallelism n/(d+1) = %.1f\n", analytic.TuranBound(n, float64(d)))
	fmt.Printf("Initial slope Δr̄(1) = d/(2(n−1)) = %.6f (Prop. 2)\n", analytic.InitialSlope(n, float64(d)))
	fmt.Printf("Safe initial m = n/(2(d+1)) = %d (Cor. 3, ratio ≤ 21.3%%)\n\n", analytic.SuggestedInitialM(n, float64(d)))

	tbl := trace.NewTable("worst-case-bounds", "m", "thm3_exact", "cor2_approx")
	for i := 1; i <= points; i++ {
		m := i * n / points
		if m < 1 {
			m = 1
		}
		tbl.AddRow(float64(m),
			analytic.WorstCaseConflictRatio(n, d, m),
			analytic.Cor2ConflictBound(float64(n), float64(d), float64(m)))
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printAlpha() {
	fmt.Println("Cor. 3: conflict-ratio bound at m = α·n/(d+1)")
	tbl := trace.NewTable("cor3-alpha", "alpha", "bound_d16", "bound_d64", "envelope")
	for _, a := range []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4} {
		tbl.AddRow(a,
			analytic.Cor3ConflictBound(a, 16),
			analytic.Cor3ConflictBound(a, 64),
			analytic.Cor3Limit(a))
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printExample1() {
	fmt.Println("Example 1: G = K_{n²} ∪ D_n, m = n+1 random actives")
	fmt.Println("Every maximal independent set has n+1 nodes, yet:")
	tbl := trace.NewTable("example1", "n", "clique_size", "m", "expected_committed")
	for _, n := range []int{4, 8, 16, 32, 64} {
		tbl.AddRow(float64(n), float64(n*n), float64(n+1),
			analytic.Example1Expected(n*n, n, n+1))
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
