// Command controlsim regenerates the controller experiments of §4:
//
//	controlsim -fig3       trajectories m_t of the hybrid Algorithm 1 vs
//	                       Recurrence A alone on random CC graphs
//	                       (n = 2000, ρ = 20%), the Fig. 3 comparison;
//	controlsim -converge   convergence-steps table across degrees and
//	                       targets (the §4.1 "~15 steps" claim);
//	controlsim -ablate     ablation of the design choices listed in
//	                       §4.1 (window averaging, dead-band, small-m
//	                       regime, hybridization);
//	controlsim -phases     tracking of abrupt parallelism changes (the
//	                       Delaunay 0→1000-in-30-steps scenario of §4.1);
//	controlsim -smartstart cold start vs the §4 Cor. 3 smart initial m
//	                       and the pure-theory guaranteed allocation;
//	controlsim -efficiency adaptive vs fixed-m cost comparison (time vs
//	                       wasted work vs power proxy, §1 motivation);
//	controlsim -rhosweep   makespan/energy versus the target ρ — locates
//	                       the knee behind Remark 1's ρ ∈ [20%, 30%].
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/speculation"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mustCtrl instantiates a controller through the shared registry; names
// here are compile-time constants, so failure is a programming error.
func mustCtrl(name string, p workload.ControllerParams) control.Controller {
	c, err := workload.NewController(name, p)
	if err != nil {
		panic(err)
	}
	return c
}

func main() {
	fig3 := flag.Bool("fig3", false, "Fig. 3 trajectory comparison")
	converge := flag.Bool("converge", false, "convergence table (§4.1)")
	ablate := flag.Bool("ablate", false, "controller ablations (§4.1)")
	phases := flag.Bool("phases", false, "abrupt-phase tracking")
	smart := flag.Bool("smartstart", false, "cold vs Cor.3 smart start vs theory-only")
	efficiency := flag.Bool("efficiency", false, "adaptive vs fixed-m cost comparison")
	rhoSweep := flag.Bool("rhosweep", false, "makespan/energy vs target ρ (Remark 1)")
	n := flag.Int("n", 2000, "CC graph size")
	rho := flag.Float64("rho", 0.20, "target conflict ratio")
	rounds := flag.Int("rounds", 120, "rounds per run")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	plot := flag.Bool("plot", false, "render ASCII plots")
	par := flag.Int("parallel", runtime.NumCPU(),
		"executor worker-pool size (0 = one goroutine per task)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"Monte Carlo estimation workers for the μ bisection probes")
	async := flag.Bool("async", false,
		"-efficiency only: drive the CC workload barrier-free with sliding-window control")
	colored := flag.Bool("colored", false,
		"-efficiency only: drive the stable-conflict workload in hybrid speculative→colored mode")
	window := flag.Int("commit-window", 0,
		"fixed async commit-window size (0 = track the controller's m)")
	flag.Parse()

	if *async && *colored {
		fmt.Fprintln(os.Stderr, "-async and -colored are mutually exclusive")
		os.Exit(2)
	}

	switch {
	case *converge:
		runConverge(*n, *seed, *workers)
	case *ablate:
		runAblate(*n, *rho, *seed, *workers)
	case *phases:
		runPhases(*rho, *seed)
	case *smart:
		runSmartStart(*n, *rho, *seed, *workers)
	case *efficiency:
		runEfficiency(*n, *rho, *seed, *par, *async, *colored, *window)
	case *rhoSweep:
		runRhoSweep(*n, *seed, *par)
	default:
		_ = fig3
		runFig3(*n, *rho, *rounds, *seed, *plot, *workers)
	}
}

func mustWrite(tbl *trace.Table) {
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runFig3 reproduces Fig. 3: two random graphs (different degrees), the
// hybrid controller vs Recurrence A alone, m₀ = 2.
func runFig3(n int, rho float64, rounds int, seed uint64, plot bool, workers int) {
	r := rng.New(seed)
	for _, d := range []float64{16, 64} {
		g := graph.RandomWithAvgDegree(r, n, d)
		mu := control.TargetMParallel(g, r.Split(), rho, 400, workers)
		fmt.Printf("Fig. 3: n=%d d=%.0f ρ=%.0f%% — μ (bisection reference) = %d\n",
			n, d, rho*100, mu)

		hybrid := mustCtrl("hybrid", workload.ControllerParams{Rho: rho})
		trH := control.RunLoopStatic(g, r.Split(), hybrid, rounds)
		recA := mustCtrl("recurrence-a", workload.ControllerParams{Rho: rho})
		trA := control.RunLoopStatic(g, r.Split(), recA, rounds)

		tbl := trace.NewTable(fmt.Sprintf("fig3-trajectories-d%.0f", d),
			"round", "hybrid_m", "recurrenceA_m", "mu")
		for i := 0; i < rounds; i++ {
			tbl.AddRow(float64(i), float64(trH.M[i]), float64(trA.M[i]), float64(mu))
		}
		mustWrite(tbl)

		cH := trH.ConvergenceStep(float64(mu), 0.30, 8)
		cA := trA.ConvergenceStep(float64(mu), 0.30, 8)
		meanH, stdH := trH.SteadyStateStats(rounds / 3)
		fmt.Printf("hybrid: converged at round %d, steady m = %.1f ± %.1f\n", cH, meanH, stdH)
		meanA, stdA := trA.SteadyStateStats(rounds / 3)
		fmt.Printf("recurrence A: converged at round %d, steady m = %.1f ± %.1f\n\n", cA, meanA, stdA)

		if plot {
			p := trace.NewASCIIPlot(72, 18)
			p.XLabel = "round"
			p.YLabel = "m"
			p.SetX(tbl.Column(0))
			p.AddSeries("hybrid", tbl.Column(1))
			p.AddSeries("recurrence A", tbl.Column(2))
			p.AddSeries("mu", tbl.Column(3))
			if err := p.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

// runConverge tabulates convergence steps across degrees and targets.
func runConverge(n int, seed uint64, workers int) {
	r := rng.New(seed)
	fmt.Println("§4.1 convergence: rounds from m₀=2 until m stays within ±30% of μ")
	tbl := trace.NewTable("convergence-steps",
		"d", "rho", "mu", "hybrid", "model_based", "recurrenceA", "recurrenceB", "bisection", "aimd")
	for _, d := range []float64{8, 16, 32, 64} {
		g := graph.RandomWithAvgDegree(r, n, d)
		for _, rho := range []float64{0.20, 0.25, 0.30} {
			mu := control.TargetMParallel(g, r.Split(), rho, 400, workers)
			step := func(c control.Controller) float64 {
				tr := control.RunLoopStatic(g, r.Split(), c, 400)
				return float64(tr.ConvergenceStep(float64(mu), 0.30, 8))
			}
			row := []float64{d, rho, float64(mu)}
			for _, name := range []string{"hybrid", "model-based", "recurrence-a",
				"recurrence-b", "bisection", "aimd"} {
				row = append(row, step(mustCtrl(name, workload.ControllerParams{Rho: rho})))
			}
			tbl.AddRow(row...)
		}
	}
	mustWrite(tbl)
	fmt.Println("\n(-1 = never converged within 400 rounds)")
}

// runAblate quantifies each §4.1 design choice by steady-state
// oscillation and convergence speed.
func runAblate(n int, rho float64, seed uint64, workers int) {
	r := rng.New(seed)
	g := graph.RandomWithAvgDegree(r, n, 16)
	mu := control.TargetMParallel(g, r.Split(), rho, 400, workers)
	fmt.Printf("Ablations on n=%d d=16 ρ=%.0f%% (μ=%d); 400 rounds each\n", n, rho*100, mu)

	variants := []struct {
		name string
		mk   func() control.Controller
	}{
		{"full-hybrid", func() control.Controller {
			return control.NewHybrid(control.DefaultHybridConfig(rho))
		}},
		{"no-window (T=1)", func() control.Controller {
			cfg := control.DefaultHybridConfig(rho)
			cfg.T = 1
			cfg.SmallMT = 1
			return control.NewHybrid(cfg)
		}},
		{"no-deadband (α1=0+)", func() control.Controller {
			cfg := control.DefaultHybridConfig(rho)
			cfg.Alpha1 = 1e-9
			cfg.SmallMAlpha1 = 1e-9
			return control.NewHybrid(cfg)
		}},
		{"no-small-m-regime", func() control.Controller {
			cfg := control.DefaultHybridConfig(rho)
			cfg.SmallMThreshold = 0
			return control.NewHybrid(cfg)
		}},
		{"B-only", func() control.Controller { return control.NewRecurrenceB(rho, 2) }},
		{"A-only", func() control.Controller { return control.NewRecurrenceA(rho, 2) }},
	}
	tbl := trace.NewTable("ablation",
		"variant", "converge_step", "steady_mean", "steady_std", "mean_ratio")
	for vi, v := range variants {
		tr := control.RunLoopStatic(g, r.Split(), v.mk(), 400)
		cs := tr.ConvergenceStep(float64(mu), 0.30, 8)
		mean, std := tr.SteadyStateStats(150)
		sumR := 0.0
		for _, x := range tr.R {
			sumR += x
		}
		tbl.AddRow(float64(vi), float64(cs), mean, std, sumR/float64(len(tr.R)))
		fmt.Printf("  [%d] %s\n", vi, v.name)
	}
	mustWrite(tbl)
}

// runSmartStart compares the cold start (m₀=2), the §4 Cor. 3 smart
// start (m₀ = n/(2(d+1))), and the pure-theory guaranteed allocation
// (largest m whose worst-case bound stays within ρ, no feedback).
func runSmartStart(n int, rho float64, seed uint64, workers int) {
	r := rng.New(seed)
	fmt.Printf("Smart start (Cor. 3) vs cold start, n=%d ρ=%.0f%%\n", n, rho*100)
	tbl := trace.NewTable("smart-start",
		"d", "mu", "cold_converge", "smart_converge", "smart_m0",
		"smart_first_ratio", "guaranteed_m")
	for _, d := range []float64{8, 16, 32, 64} {
		g := graph.RandomWithAvgDegree(r, n, d)
		mu := control.TargetMParallel(g, r.Split(), rho, 400, workers)

		cold := control.NewHybrid(control.DefaultHybridConfig(rho))
		trCold := control.RunLoopStatic(g, r.Split(), cold, 300)

		smart := control.NewHybridSmartStart(rho, n, d)
		m0 := smart.M()
		trSmart := control.RunLoopStatic(g, r.Split(), smart, 300)

		tbl.AddRow(d, float64(mu),
			float64(trCold.ConvergenceStep(float64(mu), 0.30, 8)),
			float64(trSmart.ConvergenceStep(float64(mu), 0.30, 8)),
			float64(m0),
			trSmart.R[0],
			float64(control.GuaranteedM(rho, n, d)))
	}
	mustWrite(tbl)
	fmt.Println("\n(convergence −1 = never within 300 rounds; smart_first_ratio must stay ≤ ~0.213 per Cor. 3)")
}

// runEfficiency quantifies the paper's intro trade-off on the real
// speculative runtime: too many processors waste work and power, too
// few waste time; the adaptive controller balances both.
func runEfficiency(n int, rho float64, seed uint64, par int, async, colored bool, window int) {
	mode, wl := "rounds", "cc"
	if async {
		mode = "barrier-free"
	}
	if colored {
		// Colored execution needs footprints that repeat round over
		// round to learn from; the draining CC workload commits each key
		// exactly once, so the colored comparison runs on the synthetic
		// stable-conflict workload instead.
		mode, wl = "speculative→colored", "stable"
	}
	fmt.Printf("Adaptive vs fixed-m on a draining %s workload (n=%d, d=24, ρ=%.0f%%, %s)\n", wl, n, rho*100, mode)
	fmt.Println("rounds ≈ makespan; proc-rounds ≈ energy; efficiency = useful/total work")
	run := func(c control.Controller) *speculation.AdaptiveResult {
		// The synthetic workload comes from the shared registry — the
		// same construction the specd service's jobs use.
		w, err := workload.New(wl, workload.Params{Size: n, Seed: seed, Parallel: par, Degree: 24})
		if err != nil {
			panic(err)
		}
		defer w.Stepper.Close()
		if async {
			res, err := workload.DrainAsync(context.Background(), w.Stepper, c,
				speculation.AsyncOptions{Window: window})
			if err != nil {
				panic(err)
			}
			return res
		}
		if colored {
			res, cres, err := workload.DrainColored(context.Background(), w.Stepper, c,
				speculation.ColoredOptions{})
			if err != nil {
				panic(err)
			}
			fmt.Printf("# %s: learn-rounds=%d colored-rounds=%d colorings=%d fallbacks=%d colored-r=%.3f\n",
				c.Name(), cres.SpecRounds, cres.ColoredRounds, cres.Colorings,
				cres.Fallbacks, cres.ColoredConflictRatio())
			return res
		}
		return workload.Drain(context.Background(), w.Stepper, c, 1<<30)
	}
	tbl := trace.NewTable("efficiency",
		"allocation", "rounds", "proc_rounds", "wasted", "efficiency")
	configs := []struct {
		tag  float64 // fixed m, or 0 for adaptive
		ctrl control.Controller
	}{
		{0, mustCtrl("hybrid", workload.ControllerParams{Rho: rho})},
		{2, mustCtrl("fixed", workload.ControllerParams{FixedM: 2})},
		{16, mustCtrl("fixed", workload.ControllerParams{FixedM: 16})},
		{64, mustCtrl("fixed", workload.ControllerParams{FixedM: 64})},
		{256, mustCtrl("fixed", workload.ControllerParams{FixedM: 256})},
		{1024, mustCtrl("fixed", workload.ControllerParams{FixedM: 1024})},
	}
	for _, c := range configs {
		res := run(c.ctrl)
		tbl.AddRow(c.tag, float64(res.Rounds), float64(res.ProcRounds),
			float64(res.WastedWork), res.Efficiency())
	}
	mustWrite(tbl)
	fmt.Println("\n(allocation 0 = adaptive Algorithm 1)")
}

// runRhoSweep quantifies Remark 1's recommendation ρ ∈ [20%, 30%]: too
// small a target forfeits parallelism (long makespan), too large wastes
// work (high energy); the sweep locates the knee.
func runRhoSweep(n int, seed uint64, par int) {
	fmt.Printf("Target-ρ sweep on a draining CC workload (n=%d, d=16); 5 runs each\n", n)
	tbl := trace.NewTable("rho-sweep",
		"rho", "rounds", "proc_rounds", "wasted", "efficiency")
	for _, rho := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.70} {
		var rounds, proc, wasted float64
		const reps = 5
		for i := 0; i < reps; i++ {
			cc, err := workload.New("cc", workload.Params{
				Size: n, Seed: seed + uint64(i), Parallel: par, Degree: 16})
			if err != nil {
				panic(err)
			}
			res := workload.Drain(context.Background(), cc.Stepper,
				mustCtrl("hybrid", workload.ControllerParams{Rho: rho}), 1<<30)
			cc.Stepper.Close()
			rounds += float64(res.Rounds)
			proc += float64(res.ProcRounds)
			wasted += float64(res.WastedWork)
		}
		tbl.AddRow(rho, rounds/reps, proc/reps, wasted/reps,
			(proc-wasted)/proc)
	}
	mustWrite(tbl)
}

// runPhases drives the hybrid through abrupt parallelism changes.
func runPhases(rho float64, seed uint64) {
	r := rng.New(seed)
	ps := profile.NewPhaseShifter(r, []profile.PhaseSpec{
		{Rounds: 60, N: 2000, Degree: 64}, // scarce parallelism
		{Rounds: 60, N: 2000, Degree: 4},  // parallelism explodes
		{Rounds: 60, N: 2000, Degree: 16}, // settles in between
	})
	fmt.Printf("Abrupt-phase tracking (ρ=%.0f%%): degree 64 → 4 → 16 every 60 rounds\n", rho*100)
	h := control.NewHybrid(control.DefaultHybridConfig(rho))
	tbl := trace.NewTable("phase-tracking", "round", "phase", "m", "ratio")
	round := 0
	for !ps.Done() {
		g := ps.Graph()
		m := h.M()
		mm := m
		if n := g.NumNodes(); mm > n {
			mm = n
		}
		ratio := 0.0
		if mm > 0 {
			order := g.SampleNodes(r, mm)
			committed, _ := graph.GreedyMIS(g, order)
			ratio = float64(mm-len(committed)) / float64(mm)
		}
		h.Observe(ratio)
		tbl.AddRow(float64(round), float64(ps.Phase()), float64(m), ratio)
		ps.Tick()
		round++
	}
	mustWrite(tbl)
}
