// Command ccsim regenerates Figure 2 of the paper: the conflict-ratio
// function r̄(m) for CC graphs with n = 2000 nodes and average degree
// d = 16, comparing
//
//	(i)   the worst-case upper bound (Cor. 2 / Thm. 3),
//	(ii)  a random graph ("edges chosen uniformly at random until the
//	      desired degree is reached", measured by simulation), and
//	(iii) a union of cliques plus disconnected nodes.
//
// Output is a TSV table (one row per m) and an optional ASCII plot.
//
// Usage:
//
//	ccsim                       # paper parameters (n=2000, d=16)
//	ccsim -n 4000 -d 32 -reps 400
//	ccsim -plot                 # append an ASCII rendering
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"repro/internal/speculation"

	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 2000, "CC graph size")
	d := flag.Int("d", 16, "average degree")
	reps := flag.Int("reps", 300, "Monte Carlo repetitions per point")
	points := flag.Int("points", 40, "samples along the m axis")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"Monte Carlo estimation workers (reps shard across them)")
	plot := flag.Bool("plot", false, "render an ASCII plot too")
	variance := flag.Bool("variance", false, "per-round ratio noise vs m (§4.1)")
	families := flag.Bool("families", false, "r̄(m) curves across generator families")
	runtimeCmp := flag.Bool("runtime", false, "goroutine-runtime vs model fidelity table")
	flag.Parse()

	r := rng.New(*seed)
	if *variance {
		runVariance(r, *n, *d, *reps, *workers)
		return
	}
	if *families {
		runFamilies(r, *n, *d, *reps, *points, *workers)
		return
	}
	if *runtimeCmp {
		runRuntimeFidelity(r, *n, *d, *reps, *workers)
		return
	}
	random := graph.RandomWithAvgDegree(r, *n, float64(*d))

	// Fig. 2 (iii): cliques of size d·2+1 on half the nodes, isolated
	// nodes on the other half, preserving average degree d.
	cliqueSize := 2*(*d) + 1
	numCliques := *n / (2 * cliqueSize)
	isolated := *n - numCliques*cliqueSize
	cliquey := graph.CliquesPlusIsolated(numCliques, cliqueSize, isolated)

	fmt.Printf("Fig. 2 reproduction: n=%d d=%d (random graph measured d=%.2f, cliques+isolated d=%.2f)\n",
		*n, *d, random.AvgDegree(), cliquey.AvgDegree())

	tbl := trace.NewTable("fig2-conflict-ratio",
		"m", "worst_case_bound", "random_graph", "cliques_isolated")
	ms := make([]int, 0, *points)
	for i := 1; i <= *points; i++ {
		m := i * *n / *points
		if m < 2 {
			m = 2
		}
		ms = append(ms, m)
	}
	// One CSR snapshot per curve; every m point shards reps across the
	// worker pool.
	estRandom := sched.NewEstimator(random, *workers)
	estCliquey := sched.NewEstimator(cliquey, *workers)
	for _, m := range ms {
		tbl.AddRow(float64(m),
			analytic.Cor2ConflictBound(float64(*n), float64(*d), float64(m)),
			estRandom.ConflictRatio(r, m, *reps),
			estCliquey.ConflictRatio(r, m, *reps))
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *plot {
		p := trace.NewASCIIPlot(72, 20)
		renderFig2Plot(p, tbl)
	}
}

func renderFig2Plot(p *trace.ASCIIPlot, tbl *trace.Table) {
	p.XLabel = "m (processors)"
	p.YLabel = "conflict ratio"
	p.SetX(tbl.Column(0))
	p.AddSeries("worst-case bound", tbl.Column(1))
	p.AddSeries("random graph", tbl.Column(2))
	p.AddSeries("cliques+isolated", tbl.Column(3))
	fmt.Println()
	if err := p.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runFamilies extends Fig. 2 across generator families at the same
// (n, d): the worst-case bound dominates them all (Thm. 2/3), and the
// gap quantifies how benign each conflict structure is.
func runFamilies(r *rng.Rand, n, d, reps, points, workers int) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.RandomWithAvgDegree(r, n, float64(d))},
		{"geometric", geometricWithDegree(r, n, d)},
		{"smallworld", graph.WattsStrogatz(r, n, d/2, 0.1)},
		{"scalefree", graph.BarabasiAlbert(r, n, d/2)},
	}
	fmt.Printf("Conflict-ratio curves across families, n=%d target d=%d\n", n, d)
	ests := make([]*sched.Estimator, len(graphs))
	for i, fam := range graphs {
		fmt.Printf("  %-10s measured d = %.2f\n", fam.name, fam.g.AvgDegree())
		ests[i] = sched.NewEstimator(fam.g, workers)
	}
	tbl := trace.NewTable("fig2-families",
		"m", "worst_case", "random", "geometric", "smallworld", "scalefree")
	for i := 1; i <= points; i++ {
		m := i * n / points
		if m < 2 {
			m = 2
		}
		row := []float64{float64(m), analytic.Cor2ConflictBound(float64(n), float64(d), float64(m))}
		for _, est := range ests {
			row = append(row, est.ConflictRatio(r, m, reps))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runRuntimeFidelity compares, at several m, the conflict ratio of
// (i) the Thm. 3 worst-case bound, (ii) the model simulator, and
// (iii) the goroutine speculative runtime executing one round on a
// fresh clique-union CC graph — the end-to-end fidelity chain from the
// paper's mathematics to real concurrent execution.
func runRuntimeFidelity(r *rng.Rand, n, d, reps, workers int) {
	if n%(d+1) != 0 {
		n -= n % (d + 1)
	}
	fmt.Printf("Model vs runtime fidelity on K^n_d, n=%d d=%d (runtime reps=%d)\n", n, d, reps)
	tbl := trace.NewTable("runtime-fidelity", "m", "thm3_bound", "model_mc", "runtime_mc")
	est := sched.NewEstimator(graph.CliqueUnion(n, d), workers)
	for _, frac := range []int{32, 16, 8, 4, 2} {
		m := n / frac
		if m < 2 {
			continue
		}
		model := est.ConflictRatio(r, m, reps*4)
		launched, aborted := 0, 0
		for i := 0; i < reps; i++ {
			g := graph.CliqueUnion(n, d)
			wl := speculation.NewGraphWorkload(g)
			e := speculation.NewGraphExecutor(wl, r.Split())
			st := e.Round(m)
			launched += st.Launched
			aborted += st.Aborted
		}
		tbl.AddRow(float64(m),
			analytic.WorstCaseConflictRatio(n, d, m),
			model,
			float64(aborted)/float64(launched))
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// geometricWithDegree picks the RGG radius giving expected degree ~d:
// d = n·π·radius² in the unit square (ignoring boundary).
func geometricWithDegree(r *rng.Rand, n, d int) *graph.Graph {
	radius := math.Sqrt(float64(d) / (float64(n) * math.Pi))
	return graph.RandomGeometric(r, n, radius)
}

// runVariance tabulates the per-round conflict-ratio noise against m —
// the §4.1 observation justifying window averaging and the separate
// small-m regime of Algorithm 1.
func runVariance(r *rng.Rand, n int, d, reps, workers int) {
	g := graph.RandomWithAvgDegree(r, n, float64(d))
	fmt.Printf("Per-round conflict-ratio noise, n=%d d=%d (reps=%d)\n", n, d, reps*10)
	tbl := trace.NewTable("ratio-variance", "m", "mean", "std", "rel_noise")
	est := sched.NewEstimator(g, workers)
	for _, m := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512} {
		if m > n {
			break
		}
		mean, std := est.ConflictRatioDist(r, m, reps*10)
		rel := 0.0
		if mean > 0 {
			rel = std / mean
		}
		tbl.AddRow(float64(m), mean, std, rel)
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
