// Command specd is the long-running speculation service: an HTTP daemon
// that accepts (workload, controller) jobs, runs them on the speculative
// executor under adaptive processor allocation, and exposes live
// telemetry — the paper's control loop as an operable system.
//
//	specd -addr 127.0.0.1:8080 -workers 2 -queue 64
//
// API (see internal/service):
//
//	POST   /v1/jobs       {"workload":"mesh","controller":"hybrid","rho":0.25,...}
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  live status: current m, conflict ratio, trajectory
//	DELETE /v1/jobs/{id}  cancel a queued or running job at the next round barrier
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness / drain signal, queue depth, in-flight and poisoned counts
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// -async makes barrier-free execution the default for jobs whose
// workload supports it ("cc", "spin", "stable"): workers continuously
// pull tasks through a resizable in-flight semaphore and the controller
// is fed by a sliding commit window. -colored makes hybrid
// speculative→colored execution the default where supported ("mesh",
// "cluster", "cc", "stable"): optimistic rounds learn the conflict
// graph, a coloring of it partitions the tasks into conflict-free
// classes, and the classes run lock-free until a staleness trip falls
// back to speculation. Jobs may still pick a mode explicitly with
// {"mode":"round"|"async"|"colored"}.
//
// With -state-dir set the daemon is durable: every job lifecycle
// transition is journaled to a write-ahead log in that directory
// (fsync policy chosen by -fsync; progress checkpointed every
// -checkpoint-rounds rounds, or for async jobs every
// -checkpoint-commits commits), and a restart with the same -state-dir
// replays it — completed jobs reappear with their trajectories, queued
// jobs re-enqueue, and jobs that were running when the process died
// are re-run from spec.
//
// # Cluster modes
//
// specd scales out as a sharded cluster (see internal/cluster):
//
//	specd -mode router -addr 127.0.0.1:8080 -state-dir /var/lib/specd-router
//	specd -mode node -addr 127.0.0.1:9001 -node-id n1 -join http://127.0.0.1:8080
//
// A router serves the same job API but places jobs on member nodes by
// consistent hashing with least-loaded fallback, fans out lists and
// metrics, and hands a dead node's unfinished jobs off to survivors.
// A node with -join heartbeats the router to hold a TTL membership
// lease (-lease-ttl); if the lease is revoked — the router declared it
// dead and may have handed its jobs away — the node drains instead of
// split-braining. -advertise overrides the URL the router reaches the
// node at (defaults to http://<listen-addr>).
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops,
// running jobs finish their in-flight round and are marked canceled,
// queued jobs stay queued, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	mode := flag.String("mode", "node", "process role: node | router")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	queueCap := flag.Int("queue", 64, "bounded job-queue capacity (overflow returns 429)")
	workers := flag.Int("workers", 2, "concurrent job runners")
	history := flag.Int("history", 256, "per-job trajectory ring-buffer size")
	parallel := flag.Int("parallel", 2, "default executor worker-pool size for jobs that do not set one")
	maxRounds := flag.Int("max-rounds", 0, "hard per-job round cap (0 = effectively unlimited)")
	taskRetries := flag.Int("task-retries", 0, "default retry budget for failed tasks (0 = executor default, -1 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight rounds on shutdown")
	stateDir := flag.String("state-dir", "", "state directory for the write-ahead journal (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "always", "journal fsync policy: always | interval | never")
	checkpointRounds := flag.Int("checkpoint-rounds", 32, "journal a running job's progress every K rounds")
	checkpointCommits := flag.Int("checkpoint-commits", 2048, "journal a running async job's progress every K commits")
	asyncDefault := flag.Bool("async", false, "run jobs barrier-free by default where the workload supports it (jobs may still set \"mode\" explicitly)")
	coloredDefault := flag.Bool("colored", false, "run jobs in hybrid speculative→colored mode by default where the workload supports it (jobs may still set \"mode\" explicitly)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	tenantsFile := flag.String("tenants", "", "per-tenant admission config file (JSON: {defaults, tenants:[{name,weight,rate,burst,max_pending,priority}]})")
	brownoutP99 := flag.Duration("brownout-p99", 0, "queue-wait p99 threshold that triggers brownout shedding (0 = off)")
	brownoutWindows := flag.Int("brownout-windows", 3, "consecutive bad windows before the brownout shed level escalates")

	// Cluster flags.
	join := flag.String("join", "", "router base URL to join as a cluster node (node mode)")
	nodeID := flag.String("node-id", "", "stable cluster node id (default: host:port of -addr)")
	advertise := flag.String("advertise", "", "base URL the router reaches this node at (default http://<listen-addr>)")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "membership lease TTL; heartbeats fire every TTL/3")
	sweepInterval := flag.Duration("sweep-interval", 0, "router failure-detector cadence (default lease-ttl/3)")
	syncInterval := flag.Duration("sync-interval", time.Second, "router placement-sync cadence")
	prefixTail := flag.Int("prefix-tail", 64, "trajectory points the router caches per running job for handoff")
	suspectGrace := flag.Duration("suspect-grace", 0, "how long an expired lease may stay suspect before failed probes kill it (default 2×lease-ttl)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "router read-hedge delay (0 = adaptive p99, negative = hedging off)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "seed for the outbound chaos transport (with -chaos-plan)")
	chaosPlan := flag.String("chaos-plan", "", `outbound fault plan, e.g. "router>n3:lat=50ms..100ms;n2>router:part" (src is "router" or this -node-id)`)
	flag.Parse()

	logger := log.New(os.Stdout, "", log.LstdFlags)

	fsync, err := journal.ParsePolicy(*fsyncPolicy)
	if err != nil {
		logger.Fatalf("specd: %v", err)
	}

	var chaosLinks map[string]faultinject.LinkFault
	if *chaosPlan != "" {
		if chaosLinks, err = faultinject.ParseChaosPlan(*chaosPlan); err != nil {
			logger.Fatalf("specd: bad -chaos-plan: %v", err)
		}
	}
	// chaosClient wraps outbound RPCs in the chaos transport when a plan
	// is armed; src names this end in the plan's "src>dst" keys.
	chaosClient := func(src string) *http.Client {
		if chaosLinks == nil {
			return nil
		}
		logger.Printf("specd: chaos transport armed for %s (seed=%d plan=%q)", src, *chaosSeed, *chaosPlan)
		return &http.Client{
			Timeout: 5 * time.Second,
			Transport: &faultinject.ChaosTransport{
				Src:    src,
				Config: faultinject.ChaosConfig{Seed: *chaosSeed, Links: chaosLinks},
			},
		}
	}

	if *mode == "router" {
		runRouter(logger, routerFlags{
			addr: *addr, stateDir: *stateDir, fsync: fsync,
			leaseTTL: *leaseTTL, sweepInterval: *sweepInterval,
			syncInterval: *syncInterval, prefixTail: *prefixTail,
			suspectGrace: *suspectGrace, hedgeDelay: *hedgeDelay,
			httpClient: chaosClient("router"),
		})
		return
	}
	if *mode != "node" {
		logger.Fatalf("specd: unknown -mode %q (want node or router)", *mode)
	}

	if *asyncDefault && *coloredDefault {
		logger.Fatalf("specd: -async and -colored are mutually exclusive defaults")
	}
	defaultMode := service.ModeRound
	if *asyncDefault {
		defaultMode = service.ModeAsync
	}
	if *coloredDefault {
		defaultMode = service.ModeColored
	}
	var tenantCfg service.TenantsFile
	if *tenantsFile != "" {
		if tenantCfg, err = service.LoadTenants(*tenantsFile); err != nil {
			logger.Fatalf("specd: %v", err)
		}
		logger.Printf("specd: loaded %d tenant overrides from %s", len(tenantCfg.Tenants), *tenantsFile)
	}
	svc, err := service.Open(service.Config{
		QueueCap:           *queueCap,
		Workers:            *workers,
		HistoryCap:         *history,
		DefaultParallel:    *parallel,
		MaxRounds:          *maxRounds,
		DefaultTaskRetries: *taskRetries,
		StateDir:           *stateDir,
		Fsync:              fsync,
		CheckpointEvery:    *checkpointRounds,
		CheckpointCommits:  *checkpointCommits,
		DefaultMode:        defaultMode,
		Tenants:            tenantCfg.Tenants,
		TenantDefaults:     tenantCfg.Defaults,
		BrownoutP99:        *brownoutP99,
		BrownoutWindows:    *brownoutWindows,
		Logf:               logger.Printf,
	})
	if err != nil {
		logger.Fatalf("specd: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("specd: listen: %v", err)
	}
	durable := "off"
	if *stateDir != "" {
		durable = fmt.Sprintf("%s (fsync=%s)", *stateDir, fsync)
	}
	// Printed before serving so harnesses using :0 can scrape the port.
	logger.Printf("specd: listening on %s (workers=%d queue=%d state=%s)", ln.Addr(), *workers, *queueCap, durable)

	// Join the cluster after the listener exists (the advertise URL
	// must be live before the router can place jobs here).
	var agent *cluster.Agent
	if *join != "" {
		id := *nodeID
		if id == "" {
			id = ln.Addr().String()
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		agent, err = cluster.StartAgent(cluster.AgentConfig{
			RouterURL:   *join,
			NodeID:      id,
			Advertise:   adv,
			TTL:         *leaseTTL,
			Incarnation: time.Now().UnixNano(),
			HTTPClient:  chaosClient(id),
			Load: func() cluster.LoadInfo {
				degraded, _ := svc.DegradedInfo()
				return cluster.LoadInfo{
					QueueDepth: svc.QueueDepth(),
					Running:    svc.Running(),
					Degraded:   degraded,
					Brownout:   svc.BrownedOut(),
				}
			},
			Logf: logger.Printf,
		})
		if err != nil {
			logger.Fatalf("specd: %v", err)
		}
		svc.SetClusterIdentity(id, "node", agent.LeaseExpires)
		logger.Printf("specd: joined cluster at %s as %s (advertise %s, lease %s)", *join, id, adv, *leaseTTL)
	}

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var agentRevoked <-chan struct{} // nil (blocks forever) outside a cluster
	if agent != nil {
		agentRevoked = agent.Revoked()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case got := <-sig:
		logger.Printf("specd: received %s, draining", got)
	case <-agentRevoked:
		// The router revoked our lease: it declared this node dead and
		// may already have handed our jobs to survivors. Running on
		// would split-brain those jobs, so drain instead.
		logger.Printf("specd: cluster lease revoked (%s), draining to avoid split-brain", agent.RevokeReason())
		exitCode = 1
	case err := <-serveErr:
		logger.Fatalf("specd: serve: %v", err)
	}

	if agent != nil {
		agent.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: stop the job runners first (finishing in-flight
	// rounds) while the API keeps answering status queries, then close
	// the HTTP server.
	if err := svc.Shutdown(ctx); err != nil {
		logger.Printf("specd: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("specd: http shutdown: %v", err)
		os.Exit(1)
	}
	queued := 0
	for _, j := range svc.Jobs() {
		if j.State == service.StateQueued {
			queued++
		}
	}
	logger.Printf("specd: drained cleanly (%d jobs still queued)", queued)
	fmt.Println("specd: exit")
	os.Exit(exitCode)
}

type routerFlags struct {
	addr          string
	stateDir      string
	fsync         journal.Policy
	leaseTTL      time.Duration
	sweepInterval time.Duration
	syncInterval  time.Duration
	prefixTail    int
	suspectGrace  time.Duration
	hedgeDelay    time.Duration
	httpClient    *http.Client
}

// runRouter serves the cluster front door.
func runRouter(logger *log.Logger, f routerFlags) {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		DataDir:       f.stateDir,
		LeaseTTL:      f.leaseTTL,
		SweepInterval: f.sweepInterval,
		SyncInterval:  f.syncInterval,
		PrefixTail:    f.prefixTail,
		SuspectGrace:  f.suspectGrace,
		HedgeDelay:    f.hedgeDelay,
		HTTPClient:    f.httpClient,
		Fsync:         f.fsync,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Fatalf("specd: %v", err)
	}

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		logger.Fatalf("specd: listen: %v", err)
	}
	durable := "off"
	if f.stateDir != "" {
		durable = fmt.Sprintf("%s (fsync=%s)", f.stateDir, f.fsync)
	}
	logger.Printf("specd: listening on %s (mode=router lease-ttl=%s state=%s)", ln.Addr(), f.leaseTTL, durable)

	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		logger.Printf("specd: received %s, shutting down router", got)
	case err := <-serveErr:
		logger.Fatalf("specd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("specd: http shutdown: %v", err)
	}
	rt.Close()
	fmt.Println("specd: exit")
}
