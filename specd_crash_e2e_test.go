package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// specdArgs returns the flag set for a durable daemon rooted at dir.
// checkpoint-rounds 2 makes round-mode checkpoints land almost
// immediately, checkpoint-commits 64 does the same for the async job's
// commit-count checkpoints, and the large history ring keeps the
// pre-crash trajectory prefix from being evicted during the (long)
// mesh reruns.
func durableArgs(dir string) []string {
	return []string{
		"-workers", "3", "-parallel", "1", "-queue", "32",
		"-state-dir", dir, "-fsync", "always",
		"-checkpoint-rounds", "2", "-checkpoint-commits", "64",
		"-history", "40000",
	}
}

// TestSpecdCrashRecovery is the headline durability proof: SIGKILL the
// daemon mid-workload with running and queued jobs, tear the final
// journal record the way a crash mid-append would, restart on the same
// state directory, and require every submitted job to finish with a
// non-empty trajectory — checkpointed jobs keeping their pre-crash
// rounds.
func TestSpecdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")
	stateDir := t.TempDir()
	p, base := startSpecd(t, bin, durableArgs(stateDir)...)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Two slow mesh jobs and one slow barrier-free cc job occupy all
	// three workers; six cc jobs queue behind them. At kill time: 3
	// running (with checkpoints — round-count for the meshes,
	// commit-count for the async job), 6 queued.
	var ids []string
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, service.JobSpec{
			Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 30000,
		})
		if err != nil {
			t.Fatalf("submit mesh %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	meshIDs := append([]string(nil), ids...)
	// The delay fault paces the async job (~8 in flight × 5ms/task) so
	// it is still mid-drain at kill time but reruns well inside the
	// test budget.
	asyncJob, err := c.Submit(ctx, service.JobSpec{
		Workload: "cc", Controller: "fixed", FixedM: 8, Size: 16000,
		Mode:  service.ModeAsync,
		Fault: &service.FaultSpec{DelayRate: 1, Delay: service.Duration(5 * time.Millisecond)},
	})
	if err != nil {
		t.Fatalf("submit async cc: %v", err)
	}
	ids = append(ids, asyncJob.ID)
	for i := 0; i < 6; i++ {
		st, err := c.Submit(ctx, service.JobSpec{
			Workload: "cc", Controller: "hybrid", Size: 300, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatalf("submit cc %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	// Wait until both mesh jobs are running with at least 4 rounds, so
	// at checkpoint-rounds=2 each has durable checkpoints to keep.
	for _, id := range meshIDs {
		for deadline := time.Now().Add(30 * time.Second); ; {
			st, err := c.Job(ctx, id)
			if err == nil && st.State == service.StateRunning && st.Rounds >= 4 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mesh job %s never checkpointed (last: %+v, err %v)", id, st, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// And until the async job has committed past two commit-count
	// checkpoints (at checkpoint-commits=64, 160 commits guarantees at
	// least two durable records).
	for deadline := time.Now().Add(30 * time.Second); ; {
		st, err := c.Job(ctx, asyncJob.ID)
		if err == nil && st.State == service.StateRunning && st.Committed >= 160 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job %s never checkpointed (last: %+v, err %v)", asyncJob.ID, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("specd did not die after SIGKILL")
	}

	// Simulate the crash landing mid-append: a partial frame at the tail
	// of the newest segment. Recovery must truncate it with a warning,
	// not refuse startup.
	if err := appendTornRecord(stateDir); err != nil {
		t.Fatalf("appending torn record: %v", err)
	}

	p2, base2 := startSpecd(t, bin, durableArgs(stateDir)...)
	c2 := client.New(base2)
	p2.waitLine(t, "truncating torn final record", 20*time.Second)
	p2.waitLine(t, "recovered state from", 20*time.Second)

	// Every one of the 9 jobs must reach done with a trajectory.
	for _, id := range ids {
		st, err := c2.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("waiting for %s after restart: %v", id, err)
		}
		if st.State != service.StateDone {
			t.Errorf("job %s: state %s after recovery (reason %q, error %q)", id, st.State, st.Reason, st.Error)
		}
		if len(st.Trajectory) == 0 {
			t.Errorf("job %s finished with an empty trajectory", id)
		}
	}

	// The interrupted mesh jobs were re-run: attempt 2, with the
	// checkpointed pre-crash rounds still at the head of the trajectory.
	for _, id := range meshIDs {
		st, err := c2.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.Attempt != 2 {
			t.Errorf("mesh job %s: attempt %d, want 2", id, st.Attempt)
		}
		var prefix, rerun int
		for _, pt := range st.Trajectory {
			if pt.Attempt == 0 {
				prefix++
			} else if pt.Attempt == 2 {
				rerun++
			}
		}
		if prefix < 4 {
			t.Errorf("mesh job %s: only %d pre-crash rounds preserved, want >= 4", id, prefix)
		}
		if rerun == 0 {
			t.Errorf("mesh job %s: no rerun rounds recorded", id)
		}
	}

	// The interrupted async job was re-run the same way, its pre-crash
	// pseudo-round prefix preserved by the commit-count checkpoints.
	{
		st, err := c2.Job(ctx, asyncJob.ID)
		if err != nil {
			t.Fatalf("async job %s: %v", asyncJob.ID, err)
		}
		if st.Attempt != 2 {
			t.Errorf("async job %s: attempt %d, want 2", asyncJob.ID, st.Attempt)
		}
		if st.Committed != 16000 {
			t.Errorf("async job %s: committed %d after rerun, want 16000", asyncJob.ID, st.Committed)
		}
		var prefix, rerun int
		for _, pt := range st.Trajectory {
			if pt.Attempt == 0 {
				prefix++
			} else if pt.Attempt == 2 {
				rerun++
			}
		}
		if prefix < 8 {
			t.Errorf("async job %s: only %d pre-crash samples preserved, want >= 8", asyncJob.ID, prefix)
		}
		if rerun == 0 {
			t.Errorf("async job %s: no rerun samples recorded", asyncJob.ID)
		}
	}

	// Journal metrics and healthz recovery status.
	metrics, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"specd_journal_records_total",
		"specd_journal_fsyncs_total",
		"specd_recovered_jobs_total 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	var health struct {
		Journal       bool  `json:"journal"`
		RecoveredJobs int64 `json:"recovered_jobs"`
	}
	resp, err := http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz decode: %v\n%s", err, body)
	}
	if !health.Journal || health.RecoveredJobs != 3 {
		t.Errorf("healthz = %s, want journal=true recovered_jobs=3", body)
	}
}

// appendTornRecord appends a partial frame (a header promising 64
// payload bytes, followed by only 3) to the newest wal segment.
func appendTornRecord(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no wal segments in %s", dir)
	}
	sort.Strings(names)
	f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{64, 0, 0, 0, 0xaa, 0xbb, 0xcc})
	return err
}

// TestSpecdCrashDuringPreemption: SIGKILL the daemon right after a
// preemption checkpoint lands but before the paused job gets another
// turn — the window where the pause record is durable but the
// in-memory re-enqueue is lost. Restart must restore the paused job
// from the journal, finish it with its pre-preemption trajectory
// prefix intact, and finish the high-priority job that triggered the
// pause.
func TestSpecdCrashDuringPreemption(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")
	stateDir := t.TempDir()
	args := []string{
		"-workers", "1", "-parallel", "1", "-queue", "32",
		"-state-dir", stateDir, "-fsync", "always",
		"-checkpoint-rounds", "2", "-history", "40000",
	}
	p, base := startSpecd(t, bin, args...)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// A slow low-priority mesh job holds the only worker, checkpointing
	// every 2 rounds.
	victim, err := c.Submit(ctx, service.JobSpec{
		Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 30000,
		Priority: 2,
	})
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		st, err := c.Job(ctx, victim.ID)
		if err == nil && st.State == service.StateRunning && st.Rounds >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never checkpointed (last %+v, err %v)", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The priority-9 arrival forces a pause at the victim's next round
	// barrier; the pause record hits the journal before the re-enqueue.
	urgent, err := c.Submit(ctx, service.JobSpec{
		Workload: "cc", Controller: "hybrid", Size: 300,
		Priority: service.MaxPriority,
	})
	if err != nil {
		t.Fatalf("submit urgent: %v", err)
	}
	p.waitLine(t, "(priority 9) preempting", 30*time.Second)
	p.waitLine(t, "paused for a higher-priority job", 30*time.Second)

	// Kill in the checkpoint-to-requeue window (the re-enqueue lives
	// only in memory; the journal's paused record is the truth).
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("specd did not die after SIGKILL")
	}

	p2, base2 := startSpecd(t, bin, args...)
	c2 := client.New(base2)
	p2.waitLine(t, "recovered state from", 20*time.Second)

	// Both jobs finish after restart.
	vFinal, err := c2.Wait(ctx, victim.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait victim: %v", err)
	}
	if vFinal.State != service.StateDone {
		t.Fatalf("victim state %s after recovery (reason %q, error %q)", vFinal.State, vFinal.Reason, vFinal.Error)
	}
	uFinal, err := c2.Wait(ctx, urgent.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait urgent: %v", err)
	}
	if uFinal.State != service.StateDone {
		t.Fatalf("urgent state %s after recovery", uFinal.State)
	}

	// The pause survived the crash: attempt counter and preemption
	// count restored from the journal, pre-preemption rounds preserved.
	if vFinal.Preemptions != 1 {
		t.Errorf("victim Preemptions=%d after recovery, want 1", vFinal.Preemptions)
	}
	if vFinal.Attempt < 2 {
		t.Errorf("victim Attempt=%d, want >= 2 (the pause bumped it)", vFinal.Attempt)
	}
	var prefix, rerun int
	for _, pt := range vFinal.Trajectory {
		if pt.Attempt == 0 {
			prefix++
		} else if pt.Attempt == vFinal.Attempt {
			rerun++
		}
	}
	if prefix < 4 {
		t.Errorf("victim kept %d pre-preemption rounds, want >= 4 (checkpoint-rounds=2 with 4+ rounds run)", prefix)
	}
	if rerun == 0 {
		t.Error("victim recorded no re-run rounds")
	}
}

// TestSpecdRestartCleanState: restarting on a state dir after a clean
// drain restores every finished job without re-running anything.
func TestSpecdRestartCleanState(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")
	stateDir := t.TempDir()
	p, base := startSpecd(t, bin, durableArgs(stateDir)...)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	st, err := c.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("job: %v (state %s)", err, final.State)
	}

	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("specd did not drain")
	}

	_, base2 := startSpecd(t, bin, durableArgs(stateDir)...)
	c2 := client.New(base2)
	got, err := c2.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("job after restart: %v", err)
	}
	if got.State != service.StateDone || got.Rounds != final.Rounds || len(got.Trajectory) != len(final.Trajectory) {
		t.Errorf("restored rounds=%d traj=%d state=%s, want rounds=%d traj=%d done",
			got.Rounds, len(got.Trajectory), got.State, final.Rounds, len(final.Trajectory))
	}
	if got.Attempt > 1 {
		t.Errorf("clean restart re-ran job (attempt %d)", got.Attempt)
	}
}
