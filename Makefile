# Tier-1 verification for the repo (see ROADMAP.md): `make check` is
# the command CI and reviewers run. `make bench` reproduces the
# executor micro-benchmarks recorded in CHANGES.md.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages get a dedicated race pass: the
# speculative executor (worker pool, sharded task table, pooled
# contexts), the work-set policies it draws from, the workload
# registry, and the specd job service (queue, workers, shutdown).
race:
	$(GO) test -race ./internal/speculation/ ./internal/workset/ ./internal/workload/ ./internal/service/

bench:
	$(GO) test ./internal/speculation/ -run NONE -bench BenchmarkExecutorRound -benchtime 2s
