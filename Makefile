# Tier-1 verification for the repo (see ROADMAP.md): `make check` is
# the command CI and reviewers run. `make bench` reproduces the
# executor micro-benchmarks recorded in CHANGES.md.

GO ?= go

# bench-sim knobs: lower BENCHTIME/BENCHCOUNT for a quick CI smoke run.
BENCHTIME ?= 1s
BENCHCOUNT ?= 5
BENCH_SIM_OUT ?= BENCH_sim.json

.PHONY: check vet build test race equiv chaos crash cluster partition overload bench bench-sim

check: vet build test race equiv

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages get a dedicated race pass: the
# speculative executor (worker pool, sharded task table, pooled
# contexts), the work-set policies it draws from, the workload
# registry, the specd job service (queue, workers, shutdown), and the
# CSR Monte Carlo estimation engine plus its consumers (graph, sched,
# profile, control).
race:
	$(GO) test -race ./internal/speculation/ ./internal/workset/ ./internal/workload/ ./internal/service/ \
		./internal/graph/ ./internal/sched/ ./internal/profile/ ./internal/control/

# equiv is the controller-equivalence acceptance check for the
# barrier-free executor — the hybrid controller fed sliding-window
# pseudo-rounds must settle to the same steady-state m as the same
# controller fed real rounds on the synthetic cc workload — plus the
# colored-mode acceptance run: on the stable-conflict workload the
# hybrid speculative→colored drive must reach the colored phase, commit
# with a zero conflict ratio and no aborts there, and sustain colored
# steady-state commits/sec at least matching the async executor.
equiv:
	$(GO) test -count=1 -run 'TestAsyncControllerEquivalence|TestWindowedEstimator|TestColoredEquivalence' \
		./internal/workload/ ./internal/control/

# chaos runs the fault-injection and cancellation end-to-end suites
# under the race detector: deterministic panic/error/delay injection
# through the executors, 429 storms against the client backoff, and
# cancel/deadline/shutdown races. Bounded well under a minute.
chaos:
	$(GO) test -race -count=1 -timeout 120s \
		-run 'Chaos|Cancel|Deadline|Fault|Inject|Poison|Failure|Async' \
		./internal/faultinject/ ./internal/service/ ./internal/workload/ ./internal/speculation/

# crash runs the kill-and-recover e2e under the race detector: SIGKILL
# specd mid-workload, tear the final journal record, restart on the
# same -state-dir, and require every job to finish with its trajectory
# (pre-crash rounds preserved for checkpointed jobs).
crash:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'SpecdCrash|SpecdRestart' .

# cluster runs the distributed e2e under the race detector: a router
# fronting three nodes, one SIGKILLed mid-soak — every job must reach a
# terminal state on the survivors, with handed-off jobs re-running at
# attempt >= 2 and keeping their pre-crash trajectory prefix — plus the
# load generator driven through the cluster front door.
cluster:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'SpecdCluster|SpecloadCluster' .

# partition runs the gray-failure e2e under the race detector: a router
# fronting three nodes while the chaos layer injects an asymmetric
# partition (suspect member keeps serving, no handoff), a 10x-slow node
# (reads bounded by the hedge delay), and ENOSPC on one WAL (read-only
# degraded mode, placements routed around, automatic recovery) — every
# job must still reach a terminal state on attempt 1.
partition:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'SpecdPartition' .

# overload runs the multi-tenant admission e2e under the race
# detector: three tenants with skewed weights flood one node — the
# well-behaved tenant's first submit must never see a global-queue 429,
# weighted-fair completion ratios must hold (weight 3 sustains >= 2.5x
# weight 1), the scavenger tenant must still trickle, healthz must
# answer 200 throughout, and a priority-9 arrival must preempt a
# running low-priority job at its next barrier.
overload:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'SpecdOverload' .

bench:
	$(GO) test ./internal/speculation/ -run NONE -bench BenchmarkExecutorRound -benchtime 2s

# bench-sim reproduces the simulation- and executor-layer benchmarks
# (CSR greedy-MIS kernel, serial vs parallel conflict-ratio estimators,
# round-barrier vs barrier-free execution on the straggler workload,
# and round vs async vs colored execution on stable-conflict
# topologies) and records per-benchmark medians in $(BENCH_SIM_OUT).
bench-sim:
	$(GO) test ./internal/graph/ ./internal/sched/ ./internal/speculation/ -run NONE \
		-bench 'BenchmarkCSRMIS|BenchmarkMapMIS|BenchmarkConflictRatioMC|BenchmarkExecutorAsync|BenchmarkExecutorColored' \
		-benchtime $(BENCHTIME) -count $(BENCHCOUNT) \
		| $(GO) run ./cmd/benchfmt > $(BENCH_SIM_OUT)
	@cat $(BENCH_SIM_OUT)
